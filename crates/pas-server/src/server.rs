//! The batch API server: accept loop, routing, JSON rendering.
//!
//! | Route | Effect |
//! |-------|--------|
//! | `GET /scenarios` | built-in registry: name, matrix size, description |
//! | `POST /validate` | parse + validate a manifest body |
//! | `POST /expand` | matrix shape of a manifest body |
//! | `POST /jobs` | submit a manifest as an async batch job (`202`/`429`) |
//! | `GET /jobs/:id` | phase, progress, cache hit/miss counters |
//! | `GET /jobs/:id/results` | summary CSV, or per-run JSONL via `Accept` |
//! | `GET /jobs/:id/report` | statistical report: Markdown (default), `report.json`, or SVG curves via `Accept` |
//! | `GET /jobs/:id/trace` | causal span tree: Chrome trace-event JSON (default), text tree, or critical-path summary via `Accept` (opt-in, with `/metrics`) |
//! | `GET /profile` | in-process region profile: folded stacks (default), SVG flamegraph, or JSON via `Accept`; `?seconds=N` resets and windows (opt-in, with `/metrics`) |
//! | `GET /metrics/history` | sampled time series: JSON ring dump (default) or SVG sparkline board via `Accept` (opt-in, with `/metrics`) |
//!
//! One thread per connection (requests are one round trip and jobs are
//! asynchronous, so connections are short-lived); simulation work happens
//! on the queue's worker threads, never on connection threads.

use crate::cache::ResultCache;
use crate::http::{json_string, read_request, Request, Response};
use crate::queue::{JobPhase, JobQueue, SubmitError};
use pas_scenario::{expand, matrix_size, registry, sink, ExecOptions, Manifest};
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server construction options.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Worker threads per job (0 = defer to each manifest, then cores).
    pub threads: usize,
    /// Max jobs waiting in the queue before `429` (running job excluded).
    pub queue_capacity: usize,
    /// Job worker threads. Each job is internally parallel, so 1 (the
    /// default) already saturates the machine on non-trivial batches.
    pub workers: usize,
    /// Spawn the in-process execution workers. `false` (the
    /// `pas serve --no-local-exec` mode) leaves jobs in the queue for an
    /// external backend — the `pas-dist` scheduler — to claim.
    pub local_exec: bool,
    /// Serve the observability exposition endpoints — Prometheus
    /// `GET /metrics` and the span tree `GET /jobs/:id/trace`
    /// (`pas serve --metrics`). Collection itself is always on — this
    /// only gates exposition, so a closed deployment is not forced to
    /// publish its internals.
    pub metrics: bool,
    /// History sampling interval for `GET /metrics/history`
    /// (`pas serve --history-interval-ms`). The sampler thread only
    /// runs when [`ServerOptions::metrics`] is set.
    pub history_interval: Duration,
    /// Samples retained per series in the history ring
    /// (`pas serve --history-retention`).
    pub history_retention: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            threads: 0,
            queue_capacity: 64,
            workers: 1,
            local_exec: true,
            metrics: false,
            history_interval: pas_obs::history::DEFAULT_INTERVAL,
            history_retention: pas_obs::history::DEFAULT_RETENTION,
        }
    }
}

/// An extension router consulted before the built-in routes: `Some` is
/// the response, `None` falls through. This is how the `pas-dist`
/// scheduler mounts its worker protocol (`/dist/*`, `/healthz`) on the
/// same listener without this crate depending on it.
pub type Router = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// A bound batch server, ready to run.
pub struct Server {
    listener: TcpListener,
    queue: JobQueue,
    cache: Arc<ResultCache>,
    opts: ServerOptions,
    router: Option<Router>,
    started: Instant,
}

/// Request-handling context shared by every connection thread.
#[derive(Clone)]
struct Ctx {
    queue: JobQueue,
    opts: ServerOptions,
    started: Instant,
}

impl Server {
    /// Bind to `addr` with a result cache at `cache`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache: ResultCache,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            queue: JobQueue::new(opts.queue_capacity.max(1)),
            cache: Arc::new(cache),
            opts,
            router: None,
            started: Instant::now(),
        })
    }

    /// Mount an extension [`Router`], consulted before the built-in routes.
    pub fn set_router(&mut self, router: Router) {
        self.router = Some(router);
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the job queue (e.g. to shut workers down in tests).
    pub fn queue(&self) -> JobQueue {
        self.queue.clone()
    }

    /// Serve forever: spawn the worker pool, then accept connections,
    /// one short-lived thread each.
    pub fn run(self) -> io::Result<()> {
        // With exposition enabled, feed `GET /metrics/history`: a
        // background thread snapshots the registry into bounded rings.
        // The guard lives as long as the accept loop (the process).
        let _sampler = self.opts.metrics.then(|| {
            pas_obs::history::start_sampler(pas_obs::history::HistoryConfig {
                interval: self.opts.history_interval,
                retention: self.opts.history_retention,
            })
        });
        if self.opts.local_exec {
            for _ in 0..self.opts.workers.max(1) {
                let queue = self.queue.clone();
                let cache = Arc::clone(&self.cache);
                let exec = ExecOptions {
                    threads: self.opts.threads,
                };
                std::thread::spawn(move || queue.work(&cache, exec));
            }
        }
        let ctx = Ctx {
            queue: self.queue.clone(),
            opts: self.opts,
            started: self.started,
        };
        for stream in self.listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // An idle or trickling peer must not pin a connection thread
            // forever (jobs are async; requests are one short round trip —
            // the SSE stream is the one exception, and its per-write
            // timeout still bounds a stalled peer).
            let timeout = Some(Duration::from_secs(30));
            let _ = stream.set_read_timeout(timeout);
            let _ = stream.set_write_timeout(timeout);
            let router = self.router.clone();
            let ctx = ctx.clone();
            std::thread::spawn(move || handle_connection(&mut stream, router, &ctx));
        }
        Ok(())
    }
}

/// Serve one connection: read the request, answer it (streaming for
/// `/jobs/:id/events`, one response for everything else), and record the
/// per-route request count / status / latency.
fn handle_connection(stream: &mut TcpStream, router: Option<Router>, ctx: &Ctx) {
    let t0 = Instant::now();
    match read_request(stream) {
        Ok(req) => {
            if let Some(id) = events_job_id(&req) {
                pas_obs::inc("pas.server.sse.streams.count", &[]);
                // An Err means the peer went away mid-stream (status 0,
                // recorded as "aborted").
                let status = stream_job_events(stream, &ctx.queue, id).unwrap_or_default();
                record_http(&req, status, t0);
            } else {
                let response = router
                    .as_ref()
                    .and_then(|r| r(&req))
                    .unwrap_or_else(|| route(ctx, &req));
                record_http(&req, response.status, t0);
                let _ = response.write_to(stream);
            }
        }
        Err(e) => {
            pas_obs::inc(
                "pas.server.http.requests.count",
                &[("route", "malformed"), ("method", "?"), ("status", "400")],
            );
            let _ = Response::error(400, &format!("malformed request: {e}")).write_to(stream);
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Record one served request in the registry. The route label is the
/// request's *template* (`/jobs/:id`, not `/jobs/17`), so cardinality
/// stays bounded no matter what peers ask for.
fn record_http(req: &Request, status: u16, t0: Instant) {
    let route = route_label(&req.path);
    let status = if status == 0 {
        "aborted".to_string()
    } else {
        status.to_string()
    };
    pas_obs::inc(
        "pas.server.http.requests.count",
        &[
            ("route", route),
            ("method", req.method.as_str()),
            ("status", &status),
        ],
    );
    pas_obs::observe_us(
        "pas.server.http.latency.microseconds",
        &[("route", route)],
        t0.elapsed().as_secs_f64() * 1e6,
    );
}

/// Map a request path onto its route template for metric labels.
fn route_label(path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["scenarios"] => "/scenarios",
        ["validate"] => "/validate",
        ["expand"] => "/expand",
        ["jobs"] => "/jobs",
        ["jobs", _] => "/jobs/:id",
        ["jobs", _, "results"] => "/jobs/:id/results",
        ["jobs", _, "report"] => "/jobs/:id/report",
        ["jobs", _, "trace"] => "/jobs/:id/trace",
        ["jobs", _, "events"] => "/jobs/:id/events",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["metrics", "history"] => "/metrics/history",
        ["profile"] => "/profile",
        ["dist", "register"] => "/dist/register",
        ["dist", "heartbeat"] => "/dist/heartbeat",
        ["dist", "lease"] => "/dist/lease",
        ["dist", "report"] => "/dist/report",
        ["dist", "workers"] => "/dist/workers",
        ["dist", "drain"] => "/dist/drain",
        _ => "other",
    }
}

/// `GET /jobs/:id/events`?
fn events_job_id(req: &Request) -> Option<u64> {
    if req.method != "GET" {
        return None;
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["jobs", id, "events"] => id.parse().ok(),
        _ => None,
    }
}

/// Dispatch one request.
fn route(ctx: &Ctx, req: &Request) -> Response {
    let queue = &ctx.queue;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(ctx),
        ("GET", ["metrics"]) if ctx.opts.metrics => Response::new(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            pas_obs::render_global(),
        ),
        ("GET", ["metrics", "history"]) if ctx.opts.metrics => metrics_history(req),
        ("GET", ["profile"]) if ctx.opts.metrics => profile(req),
        ("GET", ["scenarios"]) => scenarios(),
        ("POST", ["validate"]) => with_manifest(req, |m, runs| {
            Response::json(
                200,
                format!(
                    "{{\"ok\":true,\"scenario\":{},\"runs\":{runs}}}",
                    json_string(&m.name)
                ),
            )
        }),
        ("POST", ["expand"]) => {
            with_manifest(req, |m, runs| Response::json(200, expansion_json(&m, runs)))
        }
        ("POST", ["jobs"]) => {
            // Propagated trace context: a 16-hex-digit trace id minted by
            // the submitting client. Absent or malformed, the job mints
            // its own — submission never fails on a bad trace header.
            let trace = req
                .header("x-pas-trace")
                .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
                .filter(|&t| t != 0);
            with_manifest(req, |m, runs| {
                match queue.submit_traced(m, runs, trace) {
                Ok(id) => Response::json(
                    202,
                    format!(
                        "{{\"id\":{id},\"status\":\"/jobs/{id}\",\"results\":\"/jobs/{id}/results\"}}"
                    ),
                ),
                Err(SubmitError::Full) => Response::error(429, "job queue is full; retry later"),
                Err(SubmitError::Closed) => Response::error(503, "server is shutting down"),
            }
            })
        }
        ("GET", ["jobs", id]) => match id.parse::<u64>().ok().and_then(|id| queue.status(id)) {
            Some(job) => Response::json(200, status_json(&job)),
            None => Response::error(404, "no such job"),
        },
        ("GET", ["jobs", id, "results"]) => results(queue, req, id),
        ("GET", ["jobs", id, "report"]) => report(queue, req, id),
        ("GET", ["jobs", id, "trace"]) if ctx.opts.metrics => trace(queue, req, id),
        // Observability routes exist but exposition is off: a clear,
        // actionable refusal instead of a misleading "no such route".
        ("GET", ["metrics"] | ["metrics", "history"] | ["profile"] | ["jobs", _, "trace"]) => {
            Response::error(
                403,
                "metrics exposition is disabled on this server; \
                 restart it with `pas serve --metrics` to enable \
                 /metrics, /metrics/history, /profile, and /jobs/:id/trace",
            )
        }
        ("GET", _) | ("POST", _) => Response::error(404, "no such route"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Built-in liveness endpoint: version, uptime, queue pressure, and
/// whether this process executes jobs itself (`local`) or leaves them
/// for an external backend (`external`). When the `pas-dist` scheduler
/// is mounted its richer `/healthz` (worker table included) shadows
/// this one via the extension [`Router`]; this answer is what a plain
/// `pas serve` deployment gets.
fn healthz(ctx: &Ctx) -> Response {
    Response::json(
        200,
        format!(
            "{{\"ok\":true,\"version\":{},\"uptime_s\":{},\"queue_depth\":{},\
             \"running_jobs\":{},\"workers\":{},\"mode\":{},\
             \"trace_dropped\":{},\"profile_dropped\":{}}}",
            json_string(env!("CARGO_PKG_VERSION")),
            ctx.started.elapsed().as_secs(),
            ctx.queue.depth(),
            ctx.queue.running(),
            ctx.opts.workers.max(1),
            json_string(if ctx.opts.local_exec {
                "local"
            } else {
                "external"
            }),
            pas_obs::trace::dropped(),
            pas_obs::profile::dropped(),
        ),
    )
}

/// `GET /jobs/:id/trace`: the job's causal span tree, stitched from
/// every process that touched it (server queue/scheduler spans plus
/// worker spans shipped back on shard reports). Content-negotiated:
/// Chrome trace-event JSON by default (loadable in Perfetto /
/// `chrome://tracing`), a deterministic indented text tree for
/// `Accept: text/plain`, or the critical-path self-time summary for
/// `Accept: text/x-pas-critical-path`. Works mid-run too — the tree is
/// simply still growing. Exposition is opt-in behind
/// [`ServerOptions::metrics`], like `/metrics`.
fn trace(queue: &JobQueue, req: &Request, id: &str) -> Response {
    let Some(job) = id.parse::<u64>().ok().and_then(|id| queue.status(id)) else {
        return Response::error(404, "no such job");
    };
    let spans = pas_obs::trace::spans_for(job.trace.id);
    let accept = req.header("accept").unwrap_or("application/json");
    if accept.contains("text/x-pas-critical-path") {
        Response::new(
            200,
            "text/plain; charset=utf-8",
            pas_obs::trace::render_critical_path(&spans, 10),
        )
    } else if accept.contains("text/plain") {
        Response::new(
            200,
            "text/plain; charset=utf-8",
            pas_obs::trace::render_tree(&spans),
        )
    } else {
        Response::json(200, pas_obs::trace::render_chrome(&spans))
    }
}

/// Longest `?seconds=N` observation window `GET /profile` accepts,
/// bounding how long a connection thread may sleep.
const MAX_PROFILE_WINDOW_S: u64 = 60;

/// `GET /profile`: the process's region profile since start (or since
/// the last windowed request). Content-negotiated: folded-stack text by
/// default (feedable to any flamegraph toolchain), a self-contained SVG
/// flamegraph for `Accept: image/svg+xml`, or JSON for
/// `Accept: application/json`. With `?seconds=N` the table is reset
/// first and the response covers exactly the next `N` seconds — the
/// "what is this server doing right now" view. Like `/metrics`,
/// exposition is opt-in behind [`ServerOptions::metrics`]; collection
/// is always on.
fn profile(req: &Request) -> Response {
    if let Some(raw) = req.query_param("seconds") {
        let Ok(secs) = raw.parse::<u64>() else {
            return Response::error(400, "seconds must be a non-negative integer");
        };
        if secs > MAX_PROFILE_WINDOW_S {
            return Response::error(
                400,
                &format!("seconds must be at most {MAX_PROFILE_WINDOW_S}"),
            );
        }
        pas_obs::profile::reset();
        std::thread::sleep(Duration::from_secs(secs));
    }
    let accept = req.header("accept").unwrap_or("text/plain");
    if accept.contains("svg") {
        Response::new(200, "image/svg+xml", pas_obs::profile::render_svg())
    } else if accept.contains("json") {
        Response::json(200, pas_obs::profile::render_json())
    } else {
        Response::new(
            200,
            "text/plain; charset=utf-8",
            pas_obs::profile::render_folded(),
        )
    }
}

/// `GET /metrics/history`: the sampled time series of every metric —
/// counter values + derived rates, gauge levels, histogram window
/// percentiles — over the server's retention window.
/// Content-negotiated: the JSON ring dump by default, a self-contained
/// SVG sparkline board for `Accept: image/svg+xml`. Gated behind
/// [`ServerOptions::metrics`] like `/metrics`; the sampler itself is
/// started by [`Server::run`], so an active registration is an
/// invariant here — the 503 arm only covers an embedder that routed
/// here without running a sampler.
fn metrics_history(req: &Request) -> Response {
    let Some(history) = pas_obs::history::active() else {
        return Response::error(503, "history sampler is not running");
    };
    let accept = req.header("accept").unwrap_or("application/json");
    if accept.contains("svg") {
        Response::new(200, "image/svg+xml", history.render_svg())
    } else {
        Response::json(200, history.render_json())
    }
}

/// How often the SSE loop samples job state.
const SSE_POLL: Duration = Duration::from_millis(50);

/// Comment padding cadence when nothing changes, so proxies and clients
/// see a live stream.
const SSE_HEARTBEAT: Duration = Duration::from_secs(1);

/// Stream `GET /jobs/:id/events` as Server-Sent Events over chunked
/// transfer-encoding: a `phase` event on every phase transition
/// (including the initial state), a `progress` event on every observed
/// points-done tick, `: hb` comment padding while idle, and a final
/// `done` event (with cache counters) when the job completes or fails,
/// after which the stream terminates. Edge cases never hang a client:
/// an unknown id answers a plain `404` before any streaming starts,
/// and a job that already finished gets exactly one immediate `done`
/// frame and a clean close — no initial `phase` echo, no heartbeat
/// wait. Returns the effective status for the request log/metrics.
fn stream_job_events(stream: &mut TcpStream, queue: &JobQueue, id: u64) -> io::Result<u16> {
    let Some(mut last) = queue.status(id) else {
        Response::error(404, "no such job").write_to(stream)?;
        return Ok(404);
    };
    // Frames must reach the client as they happen, not when a segment
    // fills up.
    let _ = stream.set_nodelay(true);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let emit = |stream: &mut TcpStream, payload: &str| -> io::Result<()> {
        write!(stream, "{:x}\r\n", payload.len())?;
        stream.write_all(payload.as_bytes())?;
        stream.write_all(b"\r\n")?;
        stream.flush()
    };
    let event = |kind: &str, data: &str| format!("event: {kind}\ndata: {data}\n\n");

    // A still-running job announces its current phase first; an already
    // finished one goes straight to the `done` frame below.
    if !matches!(last.phase, JobPhase::Completed | JobPhase::Failed) {
        emit(stream, &event("phase", &status_json(&last)))?;
    }
    let mut last_write = Instant::now();
    // Rate anchor for the `points_per_s` field: progress since the last
    // progress frame (or stream start), over wall time.
    let mut rate_mark = (Instant::now(), last.done);
    loop {
        if matches!(last.phase, JobPhase::Completed | JobPhase::Failed) {
            emit(stream, &event("done", &status_json(&last)))?;
            break;
        }
        std::thread::sleep(SSE_POLL);
        let Some(job) = queue.status(id) else {
            // Evicted mid-stream (retention cap): tell the client and stop.
            emit(stream, &event("gone", "{}"))?;
            break;
        };
        if job.phase != last.phase {
            emit(stream, &event("phase", &status_json(&job)))?;
            last_write = Instant::now();
        } else if job.done != last.done {
            let elapsed = rate_mark.0.elapsed().as_secs_f64();
            let points_per_s = if elapsed > 0.0 && job.done >= rate_mark.1 {
                (job.done - rate_mark.1) as f64 / elapsed
            } else {
                0.0
            };
            emit(
                stream,
                &event(
                    "progress",
                    &format!(
                        "{{\"done\":{},\"total\":{},\"cache_hits\":{},\"cache_misses\":{},\
                         \"points_per_s\":{points_per_s:.1}}}",
                        job.done, job.total, job.stats.hits, job.stats.misses
                    ),
                ),
            )?;
            rate_mark = (Instant::now(), job.done);
            last_write = Instant::now();
        } else if last_write.elapsed() >= SSE_HEARTBEAT {
            emit(stream, ": hb\n\n")?;
            last_write = Instant::now();
        }
        last = job;
    }
    // Terminating zero-length chunk.
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()?;
    Ok(200)
}

/// Largest matrix a submitted manifest may expand to. A manifest is a
/// few KB but its matrix is a product of free integers, so the size is
/// checked *before* [`expand`] materialises anything.
pub const MAX_MATRIX_RUNS: u64 = 1_000_000;

/// Parse the body as a manifest and expand it, or answer 400.
fn with_manifest(req: &Request, f: impl FnOnce(Manifest, usize) -> Response) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "manifest body must be UTF-8 TOML"),
    };
    let manifest = match Manifest::parse(text) {
        Ok(m) => m,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    match matrix_size(&manifest) {
        Some(n) if n <= MAX_MATRIX_RUNS => {}
        _ => {
            return Response::error(
                400,
                &format!("manifest expands to more than {MAX_MATRIX_RUNS} runs"),
            )
        }
    }
    match expand(&manifest) {
        Ok(points) => f(manifest, points.len()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn scenarios() -> Response {
    let entries: Vec<String> = registry::BUILTINS
        .iter()
        .map(|(name, _)| {
            let m = registry::builtin(name).expect("builtins parse");
            let runs = expand(&m).map(|p| p.len()).unwrap_or(0);
            format!(
                "{{\"name\":{},\"runs\":{runs},\"policies\":{},\"description\":{}}}",
                json_string(name),
                m.policies.len(),
                json_string(&m.description)
            )
        })
        .collect();
    Response::json(200, format!("{{\"scenarios\":[{}]}}", entries.join(",")))
}

fn expansion_json(m: &Manifest, runs: usize) -> String {
    let axes: Vec<String> = m
        .sweep
        .iter()
        .map(|a| {
            let vals: Vec<String> = a
                .values
                .iter()
                .map(|v| match v {
                    pas_scenario::AxisValue::Num(v) => format!("{v}"),
                    pas_scenario::AxisValue::Name(n) => json_string(&n),
                })
                .collect();
            format!(
                "{{\"field\":{},\"values\":[{}]}}",
                json_string(&a.field),
                vals.join(",")
            )
        })
        .collect();
    let policies: Vec<String> = m.policies.iter().map(|p| json_string(&p.label)).collect();
    format!(
        "{{\"scenario\":{},\"runs\":{runs},\"replicates\":{},\"axes\":[{}],\"policies\":[{}]}}",
        json_string(&m.name),
        m.run.replicates,
        axes.join(","),
        policies.join(",")
    )
}

fn status_json(job: &crate::queue::Job) -> String {
    let mut s = format!(
        "{{\"id\":{},\"scenario\":{},\"phase\":{},\"done\":{},\"total\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"trace\":\"{:016x}\"",
        job.id,
        json_string(&job.scenario),
        json_string(job.phase.as_str()),
        job.done,
        job.total,
        job.stats.hits,
        job.stats.misses,
        job.trace.id,
    );
    if let Some(e) = &job.error {
        s.push_str(&format!(",\"error\":{}", json_string(e)));
    }
    s.push('}');
    s
}

fn results(queue: &JobQueue, req: &Request, id: &str) -> Response {
    let Some(id) = id.parse::<u64>().ok() else {
        return Response::error(404, "no such job");
    };
    let Some(job) = queue.status(id) else {
        return Response::error(404, "no such job");
    };
    let Some(batch) = queue.result(id) else {
        return Response::error(
            409,
            &format!("job is {} — results not available", job.phase.as_str()),
        );
    };
    let accept = req.header("accept").unwrap_or("text/csv");
    if accept.contains("jsonl") || accept.contains("x-ndjson") {
        Response::new(200, "application/x-ndjson", sink::records_jsonl(&batch))
    } else {
        // Byte-identical to `pas run --out`: same sink, same renderer.
        Response::new(200, "text/csv", sink::summary_csv(&batch).render())
    }
}

/// `GET /jobs/:id/report`: the statistical report of a completed job,
/// computed from its cached records. Content-negotiated: Markdown by
/// default, `report.json` for `Accept: application/json`, SVG curves
/// for `Accept: image/svg+xml`. Every body is rendered through
/// `pas-report`'s canonical reduction, so it is byte-identical to
/// `pas report` run locally on the same batch — cold or warm cache,
/// local or distributed execution.
fn report(queue: &JobQueue, req: &Request, id: &str) -> Response {
    let Some(id) = id.parse::<u64>().ok() else {
        return Response::error(404, "no such job");
    };
    let Some(job) = queue.status(id) else {
        return Response::error(404, "no such job");
    };
    let Some(batch) = queue.result(id) else {
        return Response::error(
            409,
            &format!("job is {} — report not available", job.phase.as_str()),
        );
    };
    let report = match pas_report::Report::from_batch(&batch, &pas_report::ReportOptions::default())
    {
        Ok(r) => r,
        Err(e) => return Response::error(409, &e.to_string()),
    };
    let accept = req.header("accept").unwrap_or("text/markdown");
    if accept.contains("json") {
        Response::json(200, pas_report::render_json(&report))
    } else if accept.contains("svg") {
        Response::new(200, "image/svg+xml", pas_report::render_svg(&report))
    } else {
        Response::new(200, "text/markdown", pas_report::render_md(&report))
    }
}
