//! The batch API server: accept loop, routing, JSON rendering.
//!
//! | Route | Effect |
//! |-------|--------|
//! | `GET /scenarios` | built-in registry: name, matrix size, description |
//! | `POST /validate` | parse + validate a manifest body |
//! | `POST /expand` | matrix shape of a manifest body |
//! | `POST /jobs` | submit a manifest as an async batch job (`202`/`429`) |
//! | `GET /jobs/:id` | phase, progress, cache hit/miss counters |
//! | `GET /jobs/:id/results` | summary CSV, or per-run JSONL via `Accept` |
//! | `GET /jobs/:id/report` | statistical report: Markdown (default), `report.json`, or SVG curves via `Accept` |
//!
//! One thread per connection (requests are one round trip and jobs are
//! asynchronous, so connections are short-lived); simulation work happens
//! on the queue's worker threads, never on connection threads.

use crate::cache::ResultCache;
use crate::http::{json_string, read_request, Request, Response};
use crate::queue::{JobQueue, SubmitError};
use pas_scenario::{expand, matrix_size, registry, sink, ExecOptions, Manifest};
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;

/// Server construction options.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Worker threads per job (0 = defer to each manifest, then cores).
    pub threads: usize,
    /// Max jobs waiting in the queue before `429` (running job excluded).
    pub queue_capacity: usize,
    /// Job worker threads. Each job is internally parallel, so 1 (the
    /// default) already saturates the machine on non-trivial batches.
    pub workers: usize,
    /// Spawn the in-process execution workers. `false` (the
    /// `pas serve --no-local-exec` mode) leaves jobs in the queue for an
    /// external backend — the `pas-dist` scheduler — to claim.
    pub local_exec: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            threads: 0,
            queue_capacity: 64,
            workers: 1,
            local_exec: true,
        }
    }
}

/// An extension router consulted before the built-in routes: `Some` is
/// the response, `None` falls through. This is how the `pas-dist`
/// scheduler mounts its worker protocol (`/dist/*`, `/healthz`) on the
/// same listener without this crate depending on it.
pub type Router = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// A bound batch server, ready to run.
pub struct Server {
    listener: TcpListener,
    queue: JobQueue,
    cache: Arc<ResultCache>,
    opts: ServerOptions,
    router: Option<Router>,
}

impl Server {
    /// Bind to `addr` with a result cache at `cache`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache: ResultCache,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            queue: JobQueue::new(opts.queue_capacity.max(1)),
            cache: Arc::new(cache),
            opts,
            router: None,
        })
    }

    /// Mount an extension [`Router`], consulted before the built-in routes.
    pub fn set_router(&mut self, router: Router) {
        self.router = Some(router);
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle to the job queue (e.g. to shut workers down in tests).
    pub fn queue(&self) -> JobQueue {
        self.queue.clone()
    }

    /// Serve forever: spawn the worker pool, then accept connections,
    /// one short-lived thread each.
    pub fn run(self) -> io::Result<()> {
        if self.opts.local_exec {
            for _ in 0..self.opts.workers.max(1) {
                let queue = self.queue.clone();
                let cache = Arc::clone(&self.cache);
                let exec = ExecOptions {
                    threads: self.opts.threads,
                };
                std::thread::spawn(move || queue.work(&cache, exec));
            }
        }
        for stream in self.listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // An idle or trickling peer must not pin a connection thread
            // forever (jobs are async; requests are one short round trip).
            let timeout = Some(std::time::Duration::from_secs(30));
            let _ = stream.set_read_timeout(timeout);
            let _ = stream.set_write_timeout(timeout);
            let queue = self.queue.clone();
            let router = self.router.clone();
            std::thread::spawn(move || {
                let response = match read_request(&mut stream) {
                    Ok(req) => router
                        .as_ref()
                        .and_then(|r| r(&req))
                        .unwrap_or_else(|| route(&queue, &req)),
                    Err(e) => Response::error(400, &format!("malformed request: {e}")),
                };
                let _ = response.write_to(&mut stream);
                let _ = stream.shutdown(std::net::Shutdown::Both);
            });
        }
        Ok(())
    }
}

/// Dispatch one request.
fn route(queue: &JobQueue, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["scenarios"]) => scenarios(),
        ("POST", ["validate"]) => with_manifest(req, |m, runs| {
            Response::json(
                200,
                format!(
                    "{{\"ok\":true,\"scenario\":{},\"runs\":{runs}}}",
                    json_string(&m.name)
                ),
            )
        }),
        ("POST", ["expand"]) => {
            with_manifest(req, |m, runs| Response::json(200, expansion_json(&m, runs)))
        }
        ("POST", ["jobs"]) => with_manifest(req, |m, runs| match queue.submit(m, runs) {
            Ok(id) => Response::json(
                202,
                format!(
                    "{{\"id\":{id},\"status\":\"/jobs/{id}\",\"results\":\"/jobs/{id}/results\"}}"
                ),
            ),
            Err(SubmitError::Full) => Response::error(429, "job queue is full; retry later"),
            Err(SubmitError::Closed) => Response::error(503, "server is shutting down"),
        }),
        ("GET", ["jobs", id]) => match id.parse::<u64>().ok().and_then(|id| queue.status(id)) {
            Some(job) => Response::json(200, status_json(&job)),
            None => Response::error(404, "no such job"),
        },
        ("GET", ["jobs", id, "results"]) => results(queue, req, id),
        ("GET", ["jobs", id, "report"]) => report(queue, req, id),
        ("GET", _) | ("POST", _) => Response::error(404, "no such route"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Largest matrix a submitted manifest may expand to. A manifest is a
/// few KB but its matrix is a product of free integers, so the size is
/// checked *before* [`expand`] materialises anything.
pub const MAX_MATRIX_RUNS: u64 = 1_000_000;

/// Parse the body as a manifest and expand it, or answer 400.
fn with_manifest(req: &Request, f: impl FnOnce(Manifest, usize) -> Response) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "manifest body must be UTF-8 TOML"),
    };
    let manifest = match Manifest::parse(text) {
        Ok(m) => m,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    match matrix_size(&manifest) {
        Some(n) if n <= MAX_MATRIX_RUNS => {}
        _ => {
            return Response::error(
                400,
                &format!("manifest expands to more than {MAX_MATRIX_RUNS} runs"),
            )
        }
    }
    match expand(&manifest) {
        Ok(points) => f(manifest, points.len()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn scenarios() -> Response {
    let entries: Vec<String> = registry::BUILTINS
        .iter()
        .map(|(name, _)| {
            let m = registry::builtin(name).expect("builtins parse");
            let runs = expand(&m).map(|p| p.len()).unwrap_or(0);
            format!(
                "{{\"name\":{},\"runs\":{runs},\"policies\":{},\"description\":{}}}",
                json_string(name),
                m.policies.len(),
                json_string(&m.description)
            )
        })
        .collect();
    Response::json(200, format!("{{\"scenarios\":[{}]}}", entries.join(",")))
}

fn expansion_json(m: &Manifest, runs: usize) -> String {
    let axes: Vec<String> = m
        .sweep
        .iter()
        .map(|a| {
            let vals: Vec<String> = a
                .values
                .iter()
                .map(|v| match v {
                    pas_scenario::AxisValue::Num(v) => format!("{v}"),
                    pas_scenario::AxisValue::Name(n) => json_string(&n),
                })
                .collect();
            format!(
                "{{\"field\":{},\"values\":[{}]}}",
                json_string(&a.field),
                vals.join(",")
            )
        })
        .collect();
    let policies: Vec<String> = m.policies.iter().map(|p| json_string(&p.label)).collect();
    format!(
        "{{\"scenario\":{},\"runs\":{runs},\"replicates\":{},\"axes\":[{}],\"policies\":[{}]}}",
        json_string(&m.name),
        m.run.replicates,
        axes.join(","),
        policies.join(",")
    )
}

fn status_json(job: &crate::queue::Job) -> String {
    let mut s = format!(
        "{{\"id\":{},\"scenario\":{},\"phase\":{},\"done\":{},\"total\":{},\
         \"cache_hits\":{},\"cache_misses\":{}",
        job.id,
        json_string(&job.scenario),
        json_string(job.phase.as_str()),
        job.done,
        job.total,
        job.stats.hits,
        job.stats.misses,
    );
    if let Some(e) = &job.error {
        s.push_str(&format!(",\"error\":{}", json_string(e)));
    }
    s.push('}');
    s
}

fn results(queue: &JobQueue, req: &Request, id: &str) -> Response {
    let Some(id) = id.parse::<u64>().ok() else {
        return Response::error(404, "no such job");
    };
    let Some(job) = queue.status(id) else {
        return Response::error(404, "no such job");
    };
    let Some(batch) = queue.result(id) else {
        return Response::error(
            409,
            &format!("job is {} — results not available", job.phase.as_str()),
        );
    };
    let accept = req.header("accept").unwrap_or("text/csv");
    if accept.contains("jsonl") || accept.contains("x-ndjson") {
        Response::new(200, "application/x-ndjson", sink::records_jsonl(&batch))
    } else {
        // Byte-identical to `pas run --out`: same sink, same renderer.
        Response::new(200, "text/csv", sink::summary_csv(&batch).render())
    }
}

/// `GET /jobs/:id/report`: the statistical report of a completed job,
/// computed from its cached records. Content-negotiated: Markdown by
/// default, `report.json` for `Accept: application/json`, SVG curves
/// for `Accept: image/svg+xml`. Every body is rendered through
/// `pas-report`'s canonical reduction, so it is byte-identical to
/// `pas report` run locally on the same batch — cold or warm cache,
/// local or distributed execution.
fn report(queue: &JobQueue, req: &Request, id: &str) -> Response {
    let Some(id) = id.parse::<u64>().ok() else {
        return Response::error(404, "no such job");
    };
    let Some(job) = queue.status(id) else {
        return Response::error(404, "no such job");
    };
    let Some(batch) = queue.result(id) else {
        return Response::error(
            409,
            &format!("job is {} — report not available", job.phase.as_str()),
        );
    };
    let report = match pas_report::Report::from_batch(&batch, &pas_report::ReportOptions::default())
    {
        Ok(r) => r,
        Err(e) => return Response::error(409, &e.to_string()),
    };
    let accept = req.header("accept").unwrap_or("text/markdown");
    if accept.contains("json") {
        Response::json(200, pas_report::render_json(&report))
    } else if accept.contains("svg") {
        Response::new(200, "image/svg+xml", pas_report::render_svg(&report))
    } else {
        Response::new(200, "text/markdown", pas_report::render_md(&report))
    }
}
