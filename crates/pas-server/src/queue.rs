//! Bounded job queue, job registry, and the worker pool.
//!
//! Submissions enter a FIFO with a hard capacity; when it is full the
//! server answers `429 Too Many Requests` instead of buffering without
//! bound (backpressure, not collapse). Worker threads pop jobs and run
//! them through [`crate::cache::execute_with_cache_progress`] — each job
//! is itself internally parallel via `pas-sweep::parallel_map_with`, so
//! one worker already saturates the machine; extra workers only help
//! when jobs are small. Job state lives in a registry the HTTP layer
//! reads for `GET /jobs/:id`.

use crate::cache::{execute_with_cache_traced, CacheStats, ResultCache};
use pas_scenario::{BatchResult, ExecOptions, Manifest};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Finished jobs retained for `GET /jobs/:id` before the oldest are
/// evicted (results also persist in the on-disk cache, so an evicted
/// job's batch is one warm resubmission away).
pub const RETAINED_JOBS: usize = 256;

/// Lifecycle of one submitted batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// Being executed.
    Running,
    /// Finished; results are available.
    Completed,
    /// Execution failed (expansion error, etc.).
    Failed,
}

impl JobPhase {
    /// Wire name of the phase.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Failed => "failed",
        }
    }
}

/// A job's trace context: the trace id (client-minted via
/// `X-Pas-Trace` or server-minted at submit) plus the pre-minted root
/// span id every server/scheduler/worker span parents under. The root
/// `job` span itself is recorded when the job completes or fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTrace {
    /// Trace id (the tree's identity, propagated on the wire).
    pub id: u64,
    /// Root span id (`job`), minted at submit.
    pub root: u64,
    /// Submission wall-clock, µs since the Unix epoch.
    pub start_us: u64,
}

/// One job's full state.
#[derive(Debug, Clone)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Scenario name from the submitted manifest.
    pub scenario: String,
    /// Trace context (every job is traced; recording itself is gated
    /// by the global observability switch).
    pub trace: JobTrace,
    /// Current phase.
    pub phase: JobPhase,
    /// Points finished so far.
    pub done: usize,
    /// Total points in the expanded matrix.
    pub total: usize,
    /// Cache traffic (populated as the job runs).
    pub stats: CacheStats,
    /// Error message when `phase == Failed`.
    pub error: Option<String>,
    /// Results when `phase == Completed`.
    pub result: Option<BatchResult>,
    /// When the job entered the queue (drives the wait-time and
    /// duration histograms; never serialised).
    pub submitted: Instant,
}

struct Inner {
    jobs: Mutex<JobTable>,
    /// Signalled on every push (and on shutdown).
    available: Condvar,
}

struct JobTable {
    next_id: u64,
    queue: VecDeque<u64>,
    by_id: HashMap<u64, Job>,
    manifests: HashMap<u64, Manifest>,
    shutdown: bool,
}

/// Shared job registry + queue handle.
#[derive(Clone)]
pub struct JobQueue {
    inner: Arc<Inner>,
    capacity: usize,
}

/// Why a submission was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — retry later (HTTP 429).
    Full,
    /// The queue is shutting down.
    Closed,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Arc::new(Inner {
                jobs: Mutex::new(JobTable {
                    next_id: 1,
                    queue: VecDeque::new(),
                    by_id: HashMap::new(),
                    manifests: HashMap::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            capacity,
        }
    }

    /// Enqueue a validated manifest; returns the new job id.
    pub fn submit(&self, manifest: Manifest, total: usize) -> Result<u64, SubmitError> {
        self.submit_traced(manifest, total, None)
    }

    /// [`JobQueue::submit`] under a caller-provided trace id (from an
    /// `X-Pas-Trace` header); `None` mints a fresh one.
    pub fn submit_traced(
        &self,
        manifest: Manifest,
        total: usize,
        trace: Option<u64>,
    ) -> Result<u64, SubmitError> {
        let mut t = self.inner.jobs.lock().expect("queue poisoned");
        if t.shutdown {
            pas_obs::inc("pas.queue.submit.count", &[("outcome", "rejected_closed")]);
            return Err(SubmitError::Closed);
        }
        if t.queue.len() >= self.capacity {
            pas_obs::inc("pas.queue.submit.count", &[("outcome", "rejected_full")]);
            return Err(SubmitError::Full);
        }
        let id = t.next_id;
        t.next_id += 1;
        t.by_id.insert(
            id,
            Job {
                id,
                scenario: manifest.name.clone(),
                trace: JobTrace {
                    id: trace.unwrap_or_else(pas_obs::trace::mint_id),
                    root: pas_obs::trace::mint_id(),
                    start_us: pas_obs::trace::now_us(),
                },
                phase: JobPhase::Queued,
                done: 0,
                total,
                stats: CacheStats::default(),
                error: None,
                result: None,
                submitted: Instant::now(),
            },
        );
        t.manifests.insert(id, manifest);
        t.queue.push_back(id);
        pas_obs::inc("pas.queue.submit.count", &[("outcome", "accepted")]);
        pas_obs::gauge_set("pas.queue.depth.jobs", &[], t.queue.len() as i64);
        // Retention bound: a long-lived server must not accumulate every
        // finished job's result forever. Evict oldest finished jobs past
        // the cap (their runs stay warm in the on-disk cache; a later GET
        // answers 404 and a resubmission is all cache hits).
        if t.by_id.len() > RETAINED_JOBS {
            let mut finished: Vec<u64> = t
                .by_id
                .values()
                .filter(|j| matches!(j.phase, JobPhase::Completed | JobPhase::Failed))
                .map(|j| j.id)
                .collect();
            finished.sort_unstable();
            let excess = t.by_id.len() - RETAINED_JOBS;
            for old in finished.into_iter().take(excess) {
                t.by_id.remove(&old);
            }
        }
        drop(t);
        self.inner.available.notify_one();
        Ok(id)
    }

    /// Snapshot one job (without its result payload — copying the full
    /// record vectors under the registry lock on every status poll would
    /// stall the workers' progress updates).
    pub fn status(&self, id: u64) -> Option<Job> {
        let t = self.inner.jobs.lock().expect("queue poisoned");
        t.by_id.get(&id).map(|j| Job {
            id: j.id,
            scenario: j.scenario.clone(),
            trace: j.trace,
            phase: j.phase.clone(),
            done: j.done,
            total: j.total,
            stats: j.stats,
            error: j.error.clone(),
            result: None,
            submitted: j.submitted,
        })
    }

    /// The completed result of a job, if any.
    pub fn result(&self, id: u64) -> Option<BatchResult> {
        let t = self.inner.jobs.lock().expect("queue poisoned");
        t.by_id.get(&id).and_then(|j| j.result.clone())
    }

    /// Ids of all known jobs, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        let t = self.inner.jobs.lock().expect("queue poisoned");
        let mut ids: Vec<u64> = t.by_id.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of jobs waiting to be claimed.
    pub fn depth(&self) -> usize {
        self.inner.jobs.lock().expect("queue poisoned").queue.len()
    }

    /// Number of jobs currently in the `Running` phase.
    pub fn running(&self) -> usize {
        let t = self.inner.jobs.lock().expect("queue poisoned");
        t.by_id
            .values()
            .filter(|j| j.phase == JobPhase::Running)
            .count()
    }

    /// Wake all workers and make further submissions fail.
    pub fn shutdown(&self) {
        self.inner.jobs.lock().expect("queue poisoned").shutdown = true;
        self.inner.available.notify_all();
    }

    /// Claim the oldest queued job without blocking, marking it `Running`.
    /// Used by execution backends that poll (the distributed scheduler);
    /// in-process workers use the blocking [`JobQueue::work`] loop.
    pub fn try_claim(&self) -> Option<(u64, Manifest)> {
        let mut t = self.inner.jobs.lock().expect("queue poisoned");
        t.claim_front()
    }

    /// Publish progress for a running job.
    pub fn set_progress(&self, id: u64, done: usize, total: usize) {
        self.with_job(id, |j| {
            j.done = done;
            j.total = total;
        });
    }

    /// Publish a finished job's results and mark it `Completed`.
    pub fn complete(&self, id: u64, batch: BatchResult, stats: CacheStats) {
        self.with_job(id, |j| {
            j.phase = JobPhase::Completed;
            j.done = j.total;
            j.stats = stats;
            j.result = Some(batch);
            pas_obs::inc("pas.queue.jobs.count", &[("outcome", "completed")]);
            let dur_us = j.submitted.elapsed().as_secs_f64() * 1e6;
            pas_obs::observe_us("pas.queue.job.duration.microseconds", &[], dur_us);
            pas_obs::trace::record_id(
                j.trace.id,
                j.trace.root,
                0,
                "job",
                &[("scenario", j.scenario.as_str()), ("outcome", "completed")],
                j.trace.start_us,
                dur_us as u64,
            );
        });
    }

    /// Mark a job `Failed` with an error message.
    pub fn fail(&self, id: u64, error: impl Into<String>) {
        let error = error.into();
        self.with_job(id, |j| {
            j.phase = JobPhase::Failed;
            j.error = Some(error);
            pas_obs::inc("pas.queue.jobs.count", &[("outcome", "failed")]);
            pas_obs::trace::record_id(
                j.trace.id,
                j.trace.root,
                0,
                "job",
                &[("scenario", j.scenario.as_str()), ("outcome", "failed")],
                j.trace.start_us,
                (j.submitted.elapsed().as_secs_f64() * 1e6) as u64,
            );
        });
    }

    /// Block until a job is available, pop it, and return `(id, manifest)`;
    /// `None` means the queue shut down.
    fn pop(&self) -> Option<(u64, Manifest)> {
        let mut t = self.inner.jobs.lock().expect("queue poisoned");
        loop {
            if let Some(claimed) = t.claim_front() {
                return Some(claimed);
            }
            if t.shutdown {
                return None;
            }
            t = self.inner.available.wait(t).expect("queue poisoned");
        }
    }

    fn with_job(&self, id: u64, f: impl FnOnce(&mut Job)) {
        let mut t = self.inner.jobs.lock().expect("queue poisoned");
        if let Some(j) = t.by_id.get_mut(&id) {
            f(j);
        }
    }

    /// Run the worker loop on the current thread until shutdown: pop a
    /// job, execute it against `cache`, publish progress and results.
    pub fn work(&self, cache: &ResultCache, opts: ExecOptions) {
        while let Some((id, manifest)) = self.pop() {
            let _prof = pas_obs::profile::scope("job.execute");
            let queue = self.clone();
            let trace = self.status(id).map(|j| j.trace);
            // The `job.execute` span covers the whole local execution;
            // per-point probe/run spans parent under it via the ambient
            // context the traced executor re-enters on each pool thread.
            let (span, ctx) = match trace {
                Some(tr) => {
                    let span = pas_obs::trace::start(tr.id, tr.root, "job.execute", &[]);
                    let ctx = Some((tr.id, span.id()));
                    (Some(span), ctx)
                }
                None => (None, None),
            };
            let outcome = execute_with_cache_traced(&manifest, opts, cache, ctx, |done, total| {
                queue.set_progress(id, done, total);
            });
            drop(span);
            match outcome {
                Ok((batch, stats)) => self.complete(id, batch, stats),
                Err(e) => self.fail(id, e.to_string()),
            }
        }
    }
}

impl JobTable {
    /// Pop the oldest queued job and mark it running.
    fn claim_front(&mut self) -> Option<(u64, Manifest)> {
        let id = self.queue.pop_front()?;
        let manifest = self.manifests.remove(&id).expect("manifest for queued job");
        if let Some(j) = self.by_id.get_mut(&id) {
            j.phase = JobPhase::Running;
            let wait_us = j.submitted.elapsed().as_secs_f64() * 1e6;
            pas_obs::observe_us("pas.queue.wait.microseconds", &[], wait_us);
            pas_obs::trace::record(
                j.trace.id,
                j.trace.root,
                "job.queued",
                &[],
                j.trace.start_us,
                wait_us as u64,
            );
        }
        pas_obs::gauge_set("pas.queue.depth.jobs", &[], self.queue.len() as i64);
        Some((id, manifest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_scenario::{expand, registry};

    fn tiny_manifest() -> Manifest {
        let mut m = registry::builtin("paper-default").unwrap();
        m.sweep[0].values = vec![4.0].into();
        m.run.replicates = 1;
        m
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let q = JobQueue::new(2);
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        assert!(q.submit(m.clone(), n).is_ok());
        assert!(q.submit(m.clone(), n).is_ok());
        assert_eq!(q.submit(m.clone(), n), Err(SubmitError::Full));
        q.shutdown();
        assert_eq!(q.submit(m, n), Err(SubmitError::Closed));
    }

    #[test]
    fn worker_drains_queue_and_publishes_results() {
        let dir = std::env::temp_dir().join(format!("pas_queue_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let q = JobQueue::new(8);
        let m = tiny_manifest();
        let n = expand(&m).unwrap().len();
        let id = q.submit(m, n).unwrap();
        assert_eq!(q.status(id).unwrap().phase, JobPhase::Queued);

        let worker = {
            let q = q.clone();
            let cache = cache.clone();
            std::thread::spawn(move || q.work(&cache, ExecOptions { threads: 1 }))
        };
        // Poll until the job completes (bounded, CI-safe).
        let mut waited = 0;
        while q.status(id).unwrap().phase != JobPhase::Completed {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waited += 1;
            assert!(waited < 1500, "job did not complete in 30s");
        }
        let job = q.status(id).unwrap();
        assert_eq!(job.done, job.total);
        assert_eq!(job.stats.misses, n as u64, "cold run simulates everything");
        assert_eq!(job.stats.hits, 0);
        let batch = q.result(id).expect("completed job has results");
        assert_eq!(batch.records.len(), n);

        q.shutdown();
        worker.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
