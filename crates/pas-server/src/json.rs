//! Minimal JSON field scanners for the API's flat envelopes.
//!
//! Every JSON body this workspace exchanges — job envelopes, worker
//! registration, lease grants — is a single-level object with known keys,
//! so a scanning decoder is sufficient and keeps everything std-only.
//! Shared by [`crate::client`] and the `pas-dist` protocol so the two
//! sides cannot drift.

/// Extract `"key": <unsigned int>` from a flat JSON object.
pub fn find_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extract `"key": true|false` from a flat JSON object.
pub fn find_bool(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extract `"key": "string"` (with JSON escapes) from a flat JSON object.
pub fn find_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract `"key": [1, 2, ...]` (unsigned ints) from a flat JSON object.
pub fn find_u64_array(json: &str, key: &str) -> Option<Vec<u64>> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let inner = rest[..end].trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|s| s.trim().parse().ok())
        .collect::<Option<Vec<u64>>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanners_decode_flat_envelopes() {
        let body = "{\"id\":42,\"phase\":\"running\",\"ok\":true,\"drain\":false,\
                    \"indices\":[3, 5,8],\"empty\":[],\
                    \"error\":\"boom \\\"quoted\\\"\\n\"}";
        assert_eq!(find_u64(body, "id"), Some(42));
        assert_eq!(find_u64(body, "missing"), None);
        assert_eq!(find_bool(body, "ok"), Some(true));
        assert_eq!(find_bool(body, "drain"), Some(false));
        assert_eq!(find_bool(body, "id"), None);
        assert_eq!(find_string(body, "phase").as_deref(), Some("running"));
        assert_eq!(
            find_string(body, "error").as_deref(),
            Some("boom \"quoted\"\n")
        );
        assert_eq!(find_u64_array(body, "indices"), Some(vec![3, 5, 8]));
        assert_eq!(find_u64_array(body, "empty"), Some(Vec::new()));
        assert_eq!(find_u64_array(body, "phase"), None);
    }
}
