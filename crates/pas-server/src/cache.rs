//! Content-addressed, on-disk cache of per-run results.
//!
//! A run's outcome is fully determined by the manifest's *environment*
//! (deployment, stimulus, channel, failures, grace/horizon), the resolved
//! policy, the sweep-axis assignments, and the replicate seed — see
//! [`pas_scenario::execute_point`]. The cache keys each run by a SHA-256
//! over exactly those inputs, serialised canonically:
//!
//! ```text
//! key = sha256( CACHE_VERSION
//!             ‖ canonical TOML of the manifest with name/description,
//!               policies, sweep, output and replicate fan-out stripped
//!             ‖ Debug of the resolved Policy (kind + every parameter,
//!               including a non-default predictor and its parameters)
//!             ‖ policy label ‖ axis assignments (numeric: field = f64
//!               bits; named: field $ name) ‖ seed )
//! ```
//!
//! The `Debug` rendering of `AdaptiveParams` is hand-stabilised in
//! `pas-core`: with the default predictor it is byte-identical to the
//! pre-predictor-layer derived output, so manifests that never mention a
//! predictor keep their historical keys (warm caches stay warm), while
//! every non-default predictor — and every distinct parameterisation of
//! one — prints an extra `predictor` field and can never collide. The
//! same split applies to assignments: numeric axes hash exactly as
//! before, and the predictor axis hashes through a disjoint `$`
//! separator. `key_stability.rs` pins pre-refactor keys literally.
//!
//! Stripping the non-physical sections means overlapping or resubmitted
//! batches — same environment, different sweep grids or replicate counts —
//! share entries point-for-point. Entries store every [`RunRecord`] field
//! with `f64`s as raw bits, so a cache hit is *byte-identical* to a fresh
//! simulation, and carry their own SHA-256 checksum: a corrupted or
//! truncated entry fails verification and falls back to recomputation.

use crate::hash::{hex, sha256, Sha256};
use pas_scenario::{
    execute_point, expand, reduce, AxisValue, BatchResult, ExecOptions, Manifest, RunPoint,
    RunRecord,
};
use pas_sweep::parallel_map_with;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump on any change to the key derivation or entry format.
pub const CACHE_VERSION: &str = "pas-cache v1";

/// Cache traffic counters for one batch execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Runs answered from the cache.
    pub hits: u64,
    /// Runs simulated (and stored) because no valid entry existed.
    pub misses: u64,
}

/// A directory of content-addressed run results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The content key of one run, as lowercase hex.
    pub fn key(manifest: &Manifest, pt: &RunPoint) -> String {
        let mut h = Sha256::new();
        h.update(CACHE_VERSION.as_bytes());
        h.update(b"\x00");
        h.update(environment_toml(manifest).as_bytes());
        h.update(b"\x00");
        // Policy Debug covers the kind and every resolved parameter
        // (shortest-roundtrip f64 formatting is stable across platforms).
        h.update(format!("{:?}", pt.policy).as_bytes());
        h.update(b"\x00");
        h.update(pt.policy_label.as_bytes());
        h.update(b"\x00");
        for (field, value) in &pt.assignments {
            h.update(field.as_bytes());
            match value {
                AxisValue::Num(v) => {
                    h.update(b"=");
                    h.update(&v.to_bits().to_be_bytes());
                }
                AxisValue::Name(n) => {
                    // Disjoint separator: a named assignment can never
                    // collide with any numeric bit pattern.
                    h.update(b"$");
                    h.update(n.as_bytes());
                }
            }
            h.update(b";");
        }
        h.update(b"\x00");
        h.update(&pt.seed.to_be_bytes());
        hex(&h.finish())
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.run"))
    }

    /// Load a verified entry, or `None` when absent, corrupt, or written
    /// by an incompatible version. Lookups are counted by outcome
    /// (`hit` / `miss` / `corrupt` — a version mismatch reads as
    /// corruption here: the bytes exist but do not verify) and timed;
    /// the caller still just sees `Option`, so a corrupt entry falls
    /// back to recomputation exactly as before.
    pub fn load(&self, key: &str) -> Option<RunRecord> {
        let _prof = pas_obs::profile::scope("cache.probe");
        let start_us = pas_obs::trace::now_us();
        let t0 = std::time::Instant::now();
        let (outcome, record) = match std::fs::read_to_string(self.entry_path(key)) {
            Err(_) => ("miss", None),
            Ok(text) => {
                pas_obs::add("pas.cache.read.bytes", &[], text.len() as u64);
                match Self::verify(&text) {
                    Some(r) => ("hit", Some(r)),
                    None => ("corrupt", None),
                }
            }
        };
        let el_us = t0.elapsed().as_secs_f64() * 1e6;
        pas_obs::inc("pas.cache.lookup.count", &[("outcome", outcome)]);
        pas_obs::observe_us("pas.cache.lookup.microseconds", &[], el_us);
        if let Some((trace, parent)) = pas_obs::trace::current() {
            pas_obs::trace::record(
                trace,
                parent,
                "cache.probe",
                &[("outcome", outcome)],
                start_us,
                el_us as u64,
            );
        }
        record
    }

    /// Checksum-verify and decode one entry's text.
    fn verify(text: &str) -> Option<RunRecord> {
        let rest = text.strip_prefix(CACHE_VERSION)?.strip_prefix('\n')?;
        let (checksum, payload) = rest.split_once('\n')?;
        if hex(&sha256(payload.as_bytes())) != checksum {
            return None;
        }
        decode_record(payload)
    }

    /// Store an entry (atomic rename; concurrent writers of the same key
    /// are idempotent because the content is identical by construction).
    pub fn store(&self, key: &str, record: &RunRecord) -> io::Result<()> {
        let _prof = pas_obs::profile::scope("cache.store");
        let start_us = pas_obs::trace::now_us();
        let t0 = std::time::Instant::now();
        let payload = encode_record(record);
        let text = format!(
            "{CACHE_VERSION}\n{}\n{payload}",
            hex(&sha256(payload.as_bytes()))
        );
        let tmp = self.dir.join(format!("{key}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.entry_path(key))?;
        pas_obs::inc("pas.cache.store.count", &[]);
        pas_obs::add("pas.cache.write.bytes", &[], text.len() as u64);
        if let Some((trace, parent)) = pas_obs::trace::current() {
            pas_obs::trace::record(
                trace,
                parent,
                "cache.store",
                &[],
                start_us,
                (t0.elapsed().as_secs_f64() * 1e6) as u64,
            );
        }
        Ok(())
    }
}

/// Canonical TOML of the manifest's physical environment: everything that
/// feeds [`pas_scenario::execute_point`] *except* the per-point inputs
/// (policy, assignments, seed), which are hashed separately. Report-only
/// fields (name, description, labels) and the batch shape (sweep grid,
/// replicate fan-out, thread count) are normalised away so they do not
/// fragment the key space.
pub fn environment_toml(manifest: &Manifest) -> String {
    let mut env = manifest.clone();
    env.name = "-".to_string();
    env.description = String::new();
    env.policies = Vec::new();
    env.sweep = Vec::new();
    env.output.x_label = None;
    env.run.base_seed = 0;
    env.run.replicates = 1;
    env.run.threads = 0;
    env.to_toml()
}

/// Encode one [`RunRecord`] as the cache's line-oriented text payload,
/// `f64`s as raw bits — the canonical byte-exact record serialisation,
/// also used by the `pas-dist` wire protocol so a remotely executed
/// record round-trips bit-identically.
pub fn encode_record(r: &RunRecord) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "x={:016x}", r.x.to_bits());
    let _ = writeln!(s, "label={}", escape(&r.policy_label));
    let _ = writeln!(s, "seed={}", r.seed);
    for (field, value) in &r.assignments {
        match value {
            AxisValue::Num(v) => {
                let _ = writeln!(s, "assign={}={:016x}", escape(field), v.to_bits());
            }
            AxisValue::Name(n) => {
                let _ = writeln!(s, "nassign={}={}", escape(field), escape(n));
            }
        }
    }
    let _ = writeln!(s, "delay={:016x}", r.delay_s.to_bits());
    let _ = writeln!(s, "energy={:016x}", r.energy_j.to_bits());
    let _ = writeln!(s, "reached={}", r.reached);
    let _ = writeln!(s, "detected={}", r.detected);
    let _ = writeln!(s, "missed={}", r.missed);
    let _ = writeln!(s, "requests={}", r.requests_sent);
    let _ = writeln!(s, "responses={}", r.responses_sent);
    let _ = writeln!(s, "events={}", r.events_processed);
    let _ = writeln!(s, "duration={:016x}", r.duration_s.to_bits());
    s
}

/// Decode an [`encode_record`] payload; `None` on any malformed line.
pub fn decode_record(payload: &str) -> Option<RunRecord> {
    let mut x = None;
    let mut label = None;
    let mut seed = None;
    let mut assignments = Vec::new();
    let mut delay = None;
    let mut energy = None;
    let mut reached = None;
    let mut detected = None;
    let mut missed = None;
    let mut requests = None;
    let mut responses = None;
    let mut events = None;
    let mut duration = None;
    for line in payload.lines() {
        let (k, v) = line.split_once('=')?;
        match k {
            "x" => x = Some(bits(v)?),
            "label" => label = Some(unescape(v)?),
            "seed" => seed = Some(v.parse().ok()?),
            "assign" => {
                let (field, value) = v.rsplit_once('=')?;
                assignments.push((unescape(field)?, AxisValue::Num(bits(value)?)));
            }
            "nassign" => {
                let (field, value) = v.rsplit_once('=')?;
                assignments.push((unescape(field)?, AxisValue::Name(unescape(value)?)));
            }
            "delay" => delay = Some(bits(v)?),
            "energy" => energy = Some(bits(v)?),
            "reached" => reached = Some(v.parse().ok()?),
            "detected" => detected = Some(v.parse().ok()?),
            "missed" => missed = Some(v.parse().ok()?),
            "requests" => requests = Some(v.parse().ok()?),
            "responses" => responses = Some(v.parse().ok()?),
            "events" => events = Some(v.parse().ok()?),
            "duration" => duration = Some(bits(v)?),
            _ => return None,
        }
    }
    Some(RunRecord {
        x: x?,
        policy_label: label?,
        seed: seed?,
        assignments,
        delay_s: delay?,
        energy_j: energy?,
        reached: reached?,
        detected: detected?,
        missed: missed?,
        requests_sent: requests?,
        responses_sent: responses?,
        events_processed: events?,
        duration_s: duration?,
    })
}

fn bits(v: &str) -> Option<f64> {
    u64::from_str_radix(v, 16).ok().map(f64::from_bits)
}

/// Escape a raw string onto one `key=value` line: `\`, newline, carriage
/// return, and `=` become two-character escapes. Shared by the cache
/// record codec and the dist report's span stanzas.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '=' => out.push_str("\\e"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence.
pub fn unescape(enc: &str) -> Option<String> {
    let mut out = String::with_capacity(enc.len());
    let mut chars = enc.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                'e' => out.push('='),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// [`pas_scenario::execute`] with the cache in the per-point path: hits
/// are loaded, misses are simulated via [`execute_point`] and stored.
/// Records come back in matrix order and [`reduce`] runs over the same
/// record list either way, so the output is bit-identical to a direct
/// (uncached) execution.
pub fn execute_with_cache(
    manifest: &Manifest,
    opts: ExecOptions,
    cache: &ResultCache,
) -> Result<(BatchResult, CacheStats), pas_scenario::ManifestError> {
    execute_with_cache_progress(manifest, opts, cache, |_, _| {})
}

/// [`execute_with_cache`] plus a `(done, total)` progress callback, fired
/// after every completed point from whichever worker finished it.
pub fn execute_with_cache_progress(
    manifest: &Manifest,
    opts: ExecOptions,
    cache: &ResultCache,
    on_progress: impl Fn(usize, usize) + Sync,
) -> Result<(BatchResult, CacheStats), pas_scenario::ManifestError> {
    execute_with_cache_traced(manifest, opts, cache, None, on_progress)
}

/// [`execute_with_cache_progress`] under a trace context: per-point
/// cache probes, stores, and simulations record spans parented under
/// `(trace, parent span)`. The context is re-entered *inside* each
/// worker closure so pooled threads inherit the right parent. Tracing
/// is observational only — record bytes are identical either way.
pub fn execute_with_cache_traced(
    manifest: &Manifest,
    opts: ExecOptions,
    cache: &ResultCache,
    trace_ctx: Option<(u64, u64)>,
    on_progress: impl Fn(usize, usize) + Sync,
) -> Result<(BatchResult, CacheStats), pas_scenario::ManifestError> {
    let points = expand(manifest)?;
    let field = manifest.build_field();
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let total = points.len();
    let done = std::sync::atomic::AtomicUsize::new(0);

    let records: Vec<RunRecord> = parallel_map_with(&points, opts.sweep_options(manifest), |pt| {
        let _trace = trace_ctx.map(|(t, p)| pas_obs::trace::enter(t, p));
        let key = ResultCache::key(manifest, pt);
        let record = match cache.load(&key) {
            Some(r) => {
                hits.fetch_add(1, Ordering::Relaxed);
                r
            }
            None => {
                let r = execute_point(manifest, field.as_ref(), pt);
                // A failed store only costs a future recomputation.
                let _ = cache.store(&key, &r);
                misses.fetch_add(1, Ordering::Relaxed);
                r
            }
        };
        on_progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
        record
    });
    let summaries = reduce(&records);
    Ok((
        BatchResult {
            name: manifest.name.clone(),
            x_label: manifest.x_label(),
            records,
            summaries,
        },
        CacheStats {
            hits: hits.load(Ordering::Relaxed),
            misses: misses.load(Ordering::Relaxed),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_scenario::registry;

    fn small_manifest() -> Manifest {
        let mut m = registry::builtin("paper-default").unwrap();
        m.sweep[0].values = vec![2.0, 8.0].into();
        m.run.replicates = 2;
        m
    }

    #[test]
    fn record_codec_roundtrips_exact_bits() {
        let r = RunRecord {
            x: 0.1 + 0.2,
            policy_label: "PAS=\nweird\\label\r".to_string(),
            seed: u64::MAX,
            assignments: vec![
                ("max_sleep_s".to_string(), AxisValue::Num(f64::MIN_POSITIVE)),
                (
                    "predictor".to_string(),
                    AxisValue::Name("name=with\\escapes\n".to_string()),
                ),
            ],
            delay_s: f64::NAN,
            energy_j: -0.0,
            reached: 30,
            detected: 29,
            missed: 1,
            requests_sent: 7,
            responses_sent: 6,
            events_processed: 12345,
            duration_s: 1e300,
        };
        let back = decode_record(&encode_record(&r)).expect("decodes");
        assert_eq!(back.x.to_bits(), r.x.to_bits());
        assert_eq!(back.policy_label, r.policy_label);
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.assignments[0].0, r.assignments[0].0);
        match (&back.assignments[0].1, &r.assignments[0].1) {
            (AxisValue::Num(a), AxisValue::Num(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("numeric assignment changed shape: {other:?}"),
        }
        assert_eq!(
            back.assignments[1], r.assignments[1],
            "named assignment round-trips through its own escaping"
        );
        assert_eq!(back.delay_s.to_bits(), r.delay_s.to_bits());
        assert_eq!(back.energy_j.to_bits(), r.energy_j.to_bits());
        assert_eq!(back.duration_s.to_bits(), r.duration_s.to_bits());
    }

    #[test]
    fn key_ignores_batch_shape_but_not_physics() {
        let m = small_manifest();
        let pts = expand(&m).unwrap();

        // Same environment, different sweep grid / replicate count /
        // name: identical keys for identical coordinates.
        let mut overlapping = m.clone();
        overlapping.name = "renamed".to_string();
        overlapping.sweep[0].values = vec![8.0, 32.0].into();
        overlapping.run.replicates = 5;
        let pts2 = expand(&overlapping).unwrap();
        let same: Vec<_> = pts2
            .iter()
            .filter(|p| p.x == 8.0 && p.seed <= m.run.base_seed + 1)
            .collect();
        for p2 in same {
            let p1 = pts
                .iter()
                .find(|p| p.x == 8.0 && p.seed == p2.seed && p.policy_label == p2.policy_label)
                .expect("overlapping point exists");
            assert_eq!(
                ResultCache::key(&m, p1),
                ResultCache::key(&overlapping, p2),
                "overlapping coordinates must share a key"
            );
        }

        // Physics changes must change every key.
        let mut hotter = m.clone();
        hotter.run.grace_s += 1.0;
        for (a, b) in pts.iter().zip(expand(&hotter).unwrap().iter()) {
            assert_ne!(ResultCache::key(&m, a), ResultCache::key(&hotter, b));
        }

        // Distinct points within one batch never collide.
        let keys: std::collections::BTreeSet<String> =
            pts.iter().map(|p| ResultCache::key(&m, p)).collect();
        assert_eq!(keys.len(), pts.len());
    }

    #[test]
    fn store_load_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("pas_cache_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let m = small_manifest();
        let pts = expand(&m).unwrap();
        let field = m.build_field();
        let record = execute_point(&m, field.as_ref(), &pts[0]);
        let key = ResultCache::key(&m, &pts[0]);

        assert!(cache.load(&key).is_none(), "cold cache misses");
        cache.store(&key, &record).unwrap();
        let back = cache.load(&key).expect("stored entry loads");
        assert_eq!(back.delay_s.to_bits(), record.delay_s.to_bits());
        assert_eq!(back.energy_j.to_bits(), record.energy_j.to_bits());
        assert_eq!(cache.len(), 1);

        // Flip one payload byte: the checksum must reject the entry.
        let path = dir.join(format!("{key}.run"));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none(), "corrupt entry must not load");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
