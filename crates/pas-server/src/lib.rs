//! # pas-server — the batch simulation service
//!
//! The evaluation workload is repeated, largely-overlapping experiment
//! batches: the same environments re-run with new sweep grids, more
//! replicates, or one changed policy. This crate turns the scenario
//! subsystem into a long-lived service that makes that workload
//! O(new runs) instead of O(runs):
//!
//! * [`http`] — a std-only HTTP/1.1 subset over `std::net` (the offline
//!   vendor policy rules out hyper/axum; the API needs six routes).
//! * [`server`] — the accept loop and routes: registry listing, manifest
//!   validation/expansion, async job submission, status, results.
//! * [`queue`] — a bounded FIFO with `429` backpressure and the worker
//!   pool, built on `pas-sweep::parallel_map_with`.
//! * [`cache`] — a content-addressed, on-disk result cache: each run is
//!   keyed by a SHA-256 of its physical inputs, entries store `f64`s as
//!   raw bits and carry checksums, so warm results are *byte-identical*
//!   to cold ones, survive restarts, and fall back to recomputation when
//!   corrupted.
//! * [`client`] — the blocking client behind `pas submit`.
//! * [`hash`] — the in-tree SHA-256 (FIPS 180-4) the cache keys use.
//!
//! ## Determinism guarantee
//!
//! Batch execution decomposes into [`pas_scenario::execute_point`] and
//! [`pas_scenario::reduce`]; the direct path (`pas run`) and the cached
//! path ([`cache::execute_with_cache`]) both call exactly those, so a
//! served batch — cold or warm — is byte-identical to a local run of the
//! same manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;

pub use cache::{execute_with_cache, execute_with_cache_traced, CacheStats, ResultCache};
pub use client::{
    retry_cause, Client, ClientError, HistoryFormat, JobStatus, ProfileFormat, ReportFormat,
    ResultFormat, RetryPolicy, TraceFormat,
};
pub use queue::{Job, JobPhase, JobQueue, JobTrace, SubmitError};
pub use server::{Router, Server, ServerOptions};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cache::{execute_with_cache, CacheStats, ResultCache};
    pub use crate::client::{Client, ReportFormat, ResultFormat};
    pub use crate::server::{Server, ServerOptions};
}
