//! A minimal HTTP/1.1 subset over `std::net` streams.
//!
//! Just enough protocol for the batch API and its CLI client: one
//! request per connection (`Connection: close` both ways), bodies
//! delimited by `Content-Length`, no chunked encoding, no TLS. Both the
//! server and [`crate::client`] speak through these same types, so the
//! wire format cannot drift between the two.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a manifest is a few KB; 4 MiB leaves
/// room for generated sweeps while bounding a hostile peer).
pub const MAX_BODY: usize = 4 << 20;

/// Largest accepted request-line + header block.
const MAX_HEAD: usize = 64 << 10;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Raw query string (text after the first `?`, empty when absent).
    pub query: String,
    /// Lower-cased header names → values.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A header value, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| &**s)
    }

    /// A query parameter value, by exact name (`?a=1&b=2` form; no
    /// percent-decoding — the API's parameters are plain tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serialise onto a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let _prof = pas_obs::profile::scope("http.write");
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Quote a string as a JSON string literal.
pub fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Read one request from a stream. `Err` means the connection is broken
/// or the peer sent something outside the accepted subset.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let _prof = pas_obs::profile::scope("http.read");
    // The head is read through a `Take` so the bound holds *inside* a
    // single `read_line` call too — a newline-free stream hits the limit
    // instead of growing the buffer without end.
    let mut limited = BufReader::new(stream).take(MAX_HEAD as u64);
    let mut head = String::new();
    // Request line + headers, CRLF-delimited, blank line terminated.
    loop {
        let before = head.len();
        let n = limited.read_line(&mut head)?;
        if n == 0 {
            return Err(if head.len() as u64 >= MAX_HEAD as u64 {
                io::Error::new(io::ErrorKind::InvalidData, "request head too large")
            } else {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                )
            });
        }
        if head[before..].trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    let mut reader = limited.into_inner();
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing path"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = BTreeMap::new();
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }

    let content_length: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?,
    };
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Send `request` for `path` to `stream` and read back the response
/// `(status, content_type, body)`. The client half of the same subset.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: &[u8],
) -> io::Result<(u16, String, Vec<u8>)> {
    roundtrip_with(stream, method, path, accept, &[], body)
}

/// [`roundtrip`] with extra request headers (e.g. `X-Pas-Trace` for
/// trace-context propagation). Header names must be in the token
/// charset and values line-free; this is an internal client, not a
/// general header codec.
pub fn roundtrip_with(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    accept: Option<&str>,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<(u16, String, Vec<u8>)> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: pas\r\nConnection: close\r\n");
    if let Some(a) = accept {
        let _ = std::fmt::Write::write_fmt(&mut head, format_args!("Accept: {a}\r\n"));
    }
    for (name, value) in extra_headers {
        let _ = std::fmt::Write::write_fmt(&mut head, format_args!("{name}: {value}\r\n"));
    }
    if !body.is_empty() || method == "POST" {
        let _ = std::fmt::Write::write_fmt(
            &mut head,
            format_args!(
                "Content-Type: application/toml\r\nContent-Length: {}\r\n",
                body.len()
            ),
        );
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_type = String::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-type" => content_type = value.trim().to_string(),
                "content-length" => {
                    content_length = Some(value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?)
                }
                _ => {}
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        // Connection: close delimits the body when no length was sent.
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((status, content_type, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn response_serialises_with_length() {
        let mut buf = Vec::new();
        Response::json(200, "{}").write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn query_param_parsing() {
        let req = Request {
            method: "GET".into(),
            path: "/profile".into(),
            query: "seconds=3&format=svg".into(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("seconds"), Some("3"));
        assert_eq!(req.query_param("format"), Some("svg"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn request_response_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/validate");
            assert_eq!(req.header("accept"), Some("text/csv"));
            assert_eq!(req.header("x-pas-trace"), Some("00c0ffee00c0ffee"));
            assert_eq!(req.body, b"name = 1");
            Response::new(400, "text/plain", "nope")
                .write_to(&mut stream)
                .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, ctype, body) = roundtrip_with(
            &mut stream,
            "POST",
            "/validate",
            Some("text/csv"),
            &[("X-Pas-Trace", "00c0ffee00c0ffee")],
            b"name = 1",
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(status, 400);
        assert_eq!(ctype, "text/plain");
        assert_eq!(body, b"nope");
    }
}
