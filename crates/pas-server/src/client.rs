//! A blocking client for the batch API — the engine behind `pas submit`.
//!
//! Speaks the same [`crate::http`] subset as the server: one request per
//! connection, `Content-Length` bodies. Every method is a thin, typed
//! wrapper over one route.

use crate::http::roundtrip;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Result format for [`Client::results`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFormat {
    /// Per-point summary CSV (`text/csv`) — byte-identical to
    /// `pas run --out`.
    Csv,
    /// Per-run JSONL (`application/x-ndjson`) — byte-identical to
    /// `pas run --raw`.
    Jsonl,
}

/// Progress snapshot of a submitted job, decoded from `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// `queued`, `running`, `completed`, or `failed`.
    pub phase: String,
    /// Points finished.
    pub done: u64,
    /// Points total.
    pub total: u64,
    /// Runs answered from the result cache.
    pub cache_hits: u64,
    /// Runs simulated.
    pub cache_misses: u64,
    /// Failure message, when `phase == "failed"`.
    pub error: Option<String>,
}

/// Errors surfaced to the CLI.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Non-success HTTP status; carries the server's message.
    Api(u16, String),
    /// The server answered 200 with a body we could not decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Api(status, msg) => write!(f, "server ({status}): {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    fn call(
        &self,
        method: &str,
        path: &str,
        accept: Option<&str>,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        let (status, _ctype, body) = roundtrip(&mut stream, method, path, accept, body)?;
        Ok((status, body))
    }

    fn expect_ok(&self, outcome: (u16, Vec<u8>)) -> Result<String, ClientError> {
        let (status, body) = outcome;
        let text = String::from_utf8_lossy(&body).into_owned();
        if (200..300).contains(&status) {
            Ok(text)
        } else {
            // Error bodies are `{"error": "..."}`; fall back to raw text.
            let msg = json_find_string(&text, "error").unwrap_or(text.clone());
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /scenarios`, raw JSON.
    pub fn scenarios(&self) -> Result<String, ClientError> {
        let out = self.call("GET", "/scenarios", None, &[])?;
        self.expect_ok(out)
    }

    /// `POST /validate` with manifest TOML; returns the run count.
    pub fn validate(&self, manifest_toml: &str) -> Result<u64, ClientError> {
        let out = self.call("POST", "/validate", None, manifest_toml.as_bytes())?;
        let body = self.expect_ok(out)?;
        json_find_u64(&body, "runs")
            .ok_or_else(|| ClientError::Protocol(format!("no `runs` in {body}")))
    }

    /// `POST /jobs` with manifest TOML; returns the job id.
    pub fn submit(&self, manifest_toml: &str) -> Result<u64, ClientError> {
        let out = self.call("POST", "/jobs", None, manifest_toml.as_bytes())?;
        let body = self.expect_ok(out)?;
        json_find_u64(&body, "id")
            .ok_or_else(|| ClientError::Protocol(format!("no `id` in {body}")))
    }

    /// `GET /jobs/:id`.
    pub fn status(&self, id: u64) -> Result<JobStatus, ClientError> {
        let out = self.call("GET", &format!("/jobs/{id}"), None, &[])?;
        let body = self.expect_ok(out)?;
        let field = |k: &str| {
            json_find_u64(&body, k)
                .ok_or_else(|| ClientError::Protocol(format!("no `{k}` in {body}")))
        };
        Ok(JobStatus {
            id: field("id")?,
            phase: json_find_string(&body, "phase")
                .ok_or_else(|| ClientError::Protocol(format!("no `phase` in {body}")))?,
            done: field("done")?,
            total: field("total")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            error: json_find_string(&body, "error"),
        })
    }

    /// Poll `GET /jobs/:id` every `interval` until the job completes.
    /// Returns the final status; a `failed` phase is returned, not an error.
    pub fn wait(&self, id: u64, interval: Duration) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(id)?;
            if status.phase == "completed" || status.phase == "failed" {
                return Ok(status);
            }
            std::thread::sleep(interval);
        }
    }

    /// `GET /jobs/:id/results` in the requested format, as raw bytes.
    pub fn results(&self, id: u64, format: ResultFormat) -> Result<Vec<u8>, ClientError> {
        let accept = match format {
            ResultFormat::Csv => "text/csv",
            ResultFormat::Jsonl => "application/x-ndjson",
        };
        let (status, body) = self.call("GET", &format!("/jobs/{id}/results"), Some(accept), &[])?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }
}

/// Extract `"key": <unsigned int>` from a flat JSON object. The API's
/// envelopes are single-level with known keys, so a scanning decoder is
/// sufficient and keeps the client std-only.
fn json_find_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extract `"key": "string"` (with JSON escapes) from a flat JSON object.
fn json_find_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scanners_decode_envelopes() {
        let body = "{\"id\":42,\"phase\":\"running\",\"done\":3,\"total\":10,\
                    \"error\":\"boom \\\"quoted\\\"\\n\"}";
        assert_eq!(json_find_u64(body, "id"), Some(42));
        assert_eq!(json_find_u64(body, "done"), Some(3));
        assert_eq!(json_find_u64(body, "missing"), None);
        assert_eq!(json_find_string(body, "phase").as_deref(), Some("running"));
        assert_eq!(
            json_find_string(body, "error").as_deref(),
            Some("boom \"quoted\"\n")
        );
    }
}
