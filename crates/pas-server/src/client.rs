//! A blocking client for the batch API — the engine behind `pas submit`.
//!
//! Speaks the same [`crate::http`] subset as the server: one request per
//! connection, `Content-Length` bodies. Every method is a thin, typed
//! wrapper over one route.

use crate::http::roundtrip_with;
use crate::json::{find_string as json_find_string, find_u64 as json_find_u64};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Result format for [`Client::results`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFormat {
    /// Per-point summary CSV (`text/csv`) — byte-identical to
    /// `pas run --out`.
    Csv,
    /// Per-run JSONL (`application/x-ndjson`) — byte-identical to
    /// `pas run --raw`.
    Jsonl,
}

/// Report format for [`Client::report`] (`GET /jobs/:id/report`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Markdown tables (`text/markdown`) — byte-identical to
    /// `pas report`.
    Markdown,
    /// `report.json` (`application/json`).
    Json,
    /// Delay/energy curves (`image/svg+xml`).
    Svg,
}

impl ReportFormat {
    /// The `Accept` value selecting this format.
    pub fn accept(&self) -> &'static str {
        match self {
            ReportFormat::Markdown => "text/markdown",
            ReportFormat::Json => "application/json",
            ReportFormat::Svg => "image/svg+xml",
        }
    }
}

/// Trace format for [`Client::trace`] (`GET /jobs/:id/trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (`application/json`) — load in
    /// `chrome://tracing` or Perfetto.
    Chrome,
    /// Indented span tree (`text/plain`), deterministic for diffing.
    Tree,
    /// Per-name self-time ranking (`text/x-pas-critical-path`).
    CriticalPath,
}

impl TraceFormat {
    /// The `Accept` value selecting this format.
    pub fn accept(&self) -> &'static str {
        match self {
            TraceFormat::Chrome => "application/json",
            TraceFormat::Tree => "text/plain",
            TraceFormat::CriticalPath => "text/x-pas-critical-path",
        }
    }
}

/// Profile format for [`Client::profile`] (`GET /profile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileFormat {
    /// Folded-stack text (`text/plain`), one `a;b;c self_us` line per
    /// unique stack — the interchange format flamegraph tools consume.
    Folded,
    /// Self-contained SVG flamegraph (`image/svg+xml`).
    Svg,
    /// Per-path JSON (`application/json`).
    Json,
}

impl ProfileFormat {
    /// The `Accept` value selecting this format.
    pub fn accept(&self) -> &'static str {
        match self {
            ProfileFormat::Folded => "text/plain",
            ProfileFormat::Svg => "image/svg+xml",
            ProfileFormat::Json => "application/json",
        }
    }
}

/// History format for [`Client::metrics_history`] (`GET /metrics/history`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryFormat {
    /// The sampled ring dump (`application/json`) — parse with
    /// `pas_obs::history::parse_dump`.
    Json,
    /// Self-contained SVG sparkline board (`image/svg+xml`).
    Svg,
}

impl HistoryFormat {
    /// The `Accept` value selecting this format.
    pub fn accept(&self) -> &'static str {
        match self {
            HistoryFormat::Json => "application/json",
            HistoryFormat::Svg => "image/svg+xml",
        }
    }
}

/// Progress snapshot of a submitted job, decoded from `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// `queued`, `running`, `completed`, or `failed`.
    pub phase: String,
    /// Points finished.
    pub done: u64,
    /// Points total.
    pub total: u64,
    /// Runs answered from the result cache.
    pub cache_hits: u64,
    /// Runs simulated.
    pub cache_misses: u64,
    /// Failure message, when `phase == "failed"`.
    pub error: Option<String>,
    /// Trace id (16 hex digits) tying this job's spans together; absent
    /// when talking to a pre-trace server.
    pub trace: Option<String>,
}

/// Errors surfaced to the CLI.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Non-success HTTP status; carries the server's message.
    Api(u16, String),
    /// The server answered 200 with a body we could not decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Api(status, msg) => write!(f, "server ({status}): {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry schedule for transient failures (connection refused, `429`).
///
/// Delays grow exponentially from `base`, capped at `max`, each scaled by
/// a uniform jitter in `[0.5, 1.5)` so a fleet of clients retrying
/// against one recovering server spreads out instead of stampeding.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First retry delay.
    pub base: Duration,
    /// Delay ceiling.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(100),
            max: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    fn delay(&self, attempt: u32, jitter: &mut Jitter) -> Duration {
        let cap = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.max);
        // Uniform in [0.5, 1.5) x cap.
        cap / 2 + cap.mul_f64(jitter.next_f64())
    }

    /// Sleep the jittered backoff delay before retry number `attempt`
    /// (0-based) — the shared building block for every retry loop in the
    /// workspace (submit, worker register/lease/report), so a restarted
    /// server is never stampeded by a synchronised fleet.
    pub fn sleep(&self, attempt: u32) {
        std::thread::sleep(self.delay(attempt, &mut Jitter::new(u64::from(attempt) ^ 0xb0ff)));
    }
}

/// A tiny xorshift64* stream for retry jitter — schedule noise only,
/// never simulation randomness, so seeding from the wall clock is fine.
struct Jitter {
    state: u64,
}

impl Jitter {
    fn new(salt: u64) -> Jitter {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Jitter {
            state: (now ^ salt ^ u64::from(std::process::id())) | 1,
        }
    }

    fn next_f64(&mut self) -> f64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let draw = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Whether an error is worth retrying: failures that prove the request
/// was never accepted — a refused/unreachable connection (server not up
/// yet) or explicit backpressure (`429`). A transport error *after* the
/// connection was established (reset mid-response, timeout) is NOT
/// retried: `POST /jobs` is not idempotent, and the server may have
/// already enqueued the job before the connection died. Everything else
/// — bad manifests, unknown routes, protocol junk — fails fast.
/// Short, low-cardinality cause tag for a submission failure, used as
/// the `cause` label on `pas.client.submit.retries.count` and by
/// `pas submit -v`'s retry summary.
pub fn retry_cause(e: &ClientError) -> &'static str {
    match e {
        ClientError::Io(e) => match e.kind() {
            io::ErrorKind::ConnectionRefused => "refused",
            io::ErrorKind::NotFound | io::ErrorKind::AddrNotAvailable => "unreachable",
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => "timeout",
            _ => "io",
        },
        ClientError::Api(429, _) => "backpressure",
        ClientError::Api(503, _) => "shutting_down",
        ClientError::Api(_, _) => "api",
        ClientError::Protocol(_) => "protocol",
    }
}

fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::NotFound
                | io::ErrorKind::AddrNotAvailable
        ),
        ClientError::Api(status, _) => *status == 429,
        ClientError::Protocol(_) => false,
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(
        &self,
        method: &str,
        path: &str,
        accept: Option<&str>,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        self.call_with(method, path, accept, &[], body)
    }

    fn call_with(
        &self,
        method: &str,
        path: &str,
        accept: Option<&str>,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        let (status, _ctype, body) =
            roundtrip_with(&mut stream, method, path, accept, extra_headers, body)?;
        Ok((status, body))
    }

    fn expect_ok(&self, outcome: (u16, Vec<u8>)) -> Result<String, ClientError> {
        let (status, body) = outcome;
        let text = String::from_utf8_lossy(&body).into_owned();
        if (200..300).contains(&status) {
            Ok(text)
        } else {
            // Error bodies are `{"error": "..."}`; fall back to raw text.
            let msg = json_find_string(&text, "error").unwrap_or(text.clone());
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /scenarios`, raw JSON.
    pub fn scenarios(&self) -> Result<String, ClientError> {
        let out = self.call("GET", "/scenarios", None, &[])?;
        self.expect_ok(out)
    }

    /// `POST /validate` with manifest TOML; returns the run count.
    pub fn validate(&self, manifest_toml: &str) -> Result<u64, ClientError> {
        let out = self.call("POST", "/validate", None, manifest_toml.as_bytes())?;
        let body = self.expect_ok(out)?;
        json_find_u64(&body, "runs")
            .ok_or_else(|| ClientError::Protocol(format!("no `runs` in {body}")))
    }

    /// `POST /jobs` with manifest TOML; returns the job id.
    ///
    /// Mints a fresh trace id client-side and carries it in the
    /// `X-Pas-Trace` header, so the whole causal chain — queue wait,
    /// scheduler leases, worker execution, cache probes — lands under one
    /// trace the submitter can later fetch with [`Client::trace`].
    pub fn submit(&self, manifest_toml: &str) -> Result<u64, ClientError> {
        self.submit_traced(manifest_toml, pas_obs::trace::mint_id())
            .map(|(id, _trace)| id)
    }

    /// [`Client::submit`] with a caller-supplied trace id; returns
    /// `(job_id, trace_id)`.
    pub fn submit_traced(
        &self,
        manifest_toml: &str,
        trace: u64,
    ) -> Result<(u64, u64), ClientError> {
        let hex = format!("{trace:016x}");
        let out = self.call_with(
            "POST",
            "/jobs",
            None,
            &[("X-Pas-Trace", hex.as_str())],
            manifest_toml.as_bytes(),
        )?;
        let body = self.expect_ok(out)?;
        let id = json_find_u64(&body, "id")
            .ok_or_else(|| ClientError::Protocol(format!("no `id` in {body}")))?;
        Ok((id, trace))
    }

    /// [`Client::submit`] with exponential backoff and jitter on transient
    /// failures — a refused connection (server still booting, restarting)
    /// or `429` backpressure (queue full). Permanent errors (`400` bad
    /// manifest, protocol junk) are returned immediately. `on_retry` fires
    /// before each sleep with the attempt number and the error.
    pub fn submit_with_retry(
        &self,
        manifest_toml: &str,
        policy: RetryPolicy,
        mut on_retry: impl FnMut(u32, &ClientError),
    ) -> Result<u64, ClientError> {
        let mut jitter = Jitter::new(0x5bb1);
        let mut attempt = 0u32;
        loop {
            match self.submit(manifest_toml) {
                Ok(id) => return Ok(id),
                Err(e) if retryable(&e) && attempt + 1 < policy.attempts.max(1) => {
                    // Retries are otherwise invisible once the submit
                    // finally lands — keep the per-cause tally (and the
                    // backoff spent waiting) in the registry.
                    let delay = policy.delay(attempt, &mut jitter);
                    pas_obs::inc(
                        "pas.client.submit.retries.count",
                        &[("cause", retry_cause(&e))],
                    );
                    pas_obs::add(
                        "pas.client.submit.backoff.microseconds",
                        &[("cause", retry_cause(&e))],
                        delay.as_micros() as u64,
                    );
                    on_retry(attempt + 1, &e);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `GET /healthz` (built-in; the dist scheduler serves a richer
    /// variant on the same path when mounted), raw JSON.
    pub fn healthz(&self) -> Result<String, ClientError> {
        let out = self.call("GET", "/healthz", None, &[])?;
        self.expect_ok(out)
    }

    /// `GET /metrics` (requires `pas serve --metrics`): the server's
    /// Prometheus text exposition.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let out = self.call("GET", "/metrics", None, &[])?;
        self.expect_ok(out)
    }

    /// `GET /dist/workers` as the server-rendered plain-text fleet table.
    pub fn workers_table(&self) -> Result<String, ClientError> {
        let out = self.call("GET", "/dist/workers", Some("text/plain"), &[])?;
        self.expect_ok(out)
    }

    /// `POST /dist/drain`: stop claiming jobs; workers exit when all
    /// active jobs finish.
    pub fn drain(&self) -> Result<(), ClientError> {
        let out = self.call("POST", "/dist/drain", None, &[])?;
        self.expect_ok(out).map(|_| ())
    }

    /// `GET /jobs/:id`.
    pub fn status(&self, id: u64) -> Result<JobStatus, ClientError> {
        let out = self.call("GET", &format!("/jobs/{id}"), None, &[])?;
        let body = self.expect_ok(out)?;
        let field = |k: &str| {
            json_find_u64(&body, k)
                .ok_or_else(|| ClientError::Protocol(format!("no `{k}` in {body}")))
        };
        Ok(JobStatus {
            id: field("id")?,
            phase: json_find_string(&body, "phase")
                .ok_or_else(|| ClientError::Protocol(format!("no `phase` in {body}")))?,
            done: field("done")?,
            total: field("total")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            error: json_find_string(&body, "error"),
            trace: json_find_string(&body, "trace"),
        })
    }

    /// Poll `GET /jobs/:id` every `interval` until the job completes.
    /// Returns the final status; a `failed` phase is returned, not an error.
    pub fn wait(&self, id: u64, interval: Duration) -> Result<JobStatus, ClientError> {
        self.wait_with(id, interval, |_| {})
    }

    /// [`Client::wait`], invoking `on_status` with every polled snapshot
    /// (including the final one) — the hook `pas submit -v` uses to show
    /// a live points/s readout without a second polling loop.
    pub fn wait_with(
        &self,
        id: u64,
        interval: Duration,
        mut on_status: impl FnMut(&JobStatus),
    ) -> Result<JobStatus, ClientError> {
        loop {
            let status = self.status(id)?;
            on_status(&status);
            if status.phase == "completed" || status.phase == "failed" {
                return Ok(status);
            }
            std::thread::sleep(interval);
        }
    }

    /// `GET /jobs/:id/results` in the requested format, as raw bytes.
    pub fn results(&self, id: u64, format: ResultFormat) -> Result<Vec<u8>, ClientError> {
        let accept = match format {
            ResultFormat::Csv => "text/csv",
            ResultFormat::Jsonl => "application/x-ndjson",
        };
        let (status, body) = self.call("GET", &format!("/jobs/{id}/results"), Some(accept), &[])?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /jobs/:id/trace` in the requested format, as raw bytes
    /// (requires `pas serve --metrics`).
    pub fn trace(&self, id: u64, format: TraceFormat) -> Result<Vec<u8>, ClientError> {
        let (status, body) = self.call(
            "GET",
            &format!("/jobs/{id}/trace"),
            Some(format.accept()),
            &[],
        )?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /profile` in the requested format, as raw bytes (requires
    /// `pas serve --metrics`). `seconds` resets the server's profile
    /// table first and observes exactly that window; `None` reads the
    /// accumulation since process start (or the last reset).
    pub fn profile(
        &self,
        format: ProfileFormat,
        seconds: Option<u64>,
    ) -> Result<Vec<u8>, ClientError> {
        let path = match seconds {
            Some(s) => format!("/profile?seconds={s}"),
            None => "/profile".to_string(),
        };
        let (status, body) = self.call("GET", &path, Some(format.accept()), &[])?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /metrics/history` in the requested format, as raw bytes
    /// (requires `pas serve --metrics`). A server running without
    /// exposition answers `403` with guidance, surfaced as
    /// [`ClientError::Api`].
    pub fn metrics_history(&self, format: HistoryFormat) -> Result<Vec<u8>, ClientError> {
        let (status, body) = self.call("GET", "/metrics/history", Some(format.accept()), &[])?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }

    /// `GET /jobs/:id/report` in the requested format, as raw bytes.
    pub fn report(&self, id: u64, format: ReportFormat) -> Result<Vec<u8>, ClientError> {
        let (status, body) = self.call(
            "GET",
            &format!("/jobs/{id}/report"),
            Some(format.accept()),
            &[],
        )?;
        if status == 200 {
            Ok(body)
        } else {
            let text = String::from_utf8_lossy(&body).into_owned();
            let msg = json_find_string(&text, "error").unwrap_or(text);
            Err(ClientError::Api(status, msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(100),
            max: Duration::from_secs(2),
        };
        let mut jitter = Jitter::new(7);
        let mut prev_cap = Duration::ZERO;
        for attempt in 0..6 {
            let d = p.delay(attempt, &mut jitter);
            let cap = p.base.saturating_mul(1 << attempt).min(p.max);
            assert!(d <= cap + cap / 2, "attempt {attempt}: {d:?} > 1.5x{cap:?}");
            assert!(d >= cap / 2, "attempt {attempt}: {d:?} < 0.5x{cap:?}");
            assert!(cap >= prev_cap);
            prev_cap = cap;
        }
        // Deep attempts saturate at `max` (± jitter), never overflow.
        let deep = p.delay(40, &mut jitter);
        assert!(deep <= p.max + p.max / 2);
    }

    #[test]
    fn retryable_classification() {
        assert!(retryable(&ClientError::Io(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "refused"
        ))));
        assert!(retryable(&ClientError::Api(429, "full".into())));
        assert!(!retryable(&ClientError::Api(400, "bad manifest".into())));
        assert!(!retryable(&ClientError::Protocol("junk".into())));
        // Post-connect transport failures must NOT resubmit: the server
        // may already hold the job.
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::TimedOut,
        ] {
            assert!(!retryable(&ClientError::Io(io::Error::new(kind, "late"))));
        }
    }
}
