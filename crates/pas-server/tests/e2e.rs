//! End-to-end: a real server on a loopback port, driven by the real
//! client — the same pair `pas serve` / `pas submit` wire up.

use pas_scenario::{execute, registry, ExecOptions};
use pas_server::{Client, ResultCache, ResultFormat, Server, ServerOptions};
use std::time::Duration;

/// Boot a server on an ephemeral port; returns (addr, client, cache dir).
fn boot(tag: &str, opts: ServerOptions) -> (Client, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("pas_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).unwrap();
    let server = Server::bind("127.0.0.1:0", cache, opts).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    (Client::new(addr.to_string()), dir)
}

fn small_manifest_toml() -> (pas_scenario::Manifest, String) {
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![4.0, 12.0].into();
    m.run.replicates = 2;
    (m.clone(), m.to_toml())
}

#[test]
fn submit_poll_results_matches_direct_run_cold_and_warm() {
    let (client, dir) = boot("roundtrip", ServerOptions::default());
    let (manifest, toml) = small_manifest_toml();
    let n = pas_scenario::expand(&manifest).unwrap().len() as u64;

    // The registry is served.
    let scenarios = client.scenarios().unwrap();
    assert!(scenarios.contains("\"paper-default\""));

    // Validation round-trips the run count.
    assert_eq!(client.validate(&toml).unwrap(), n);

    // Cold submission: everything simulates.
    let id = client.submit(&toml).unwrap();
    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed", "error: {:?}", done.error);
    assert_eq!(done.done, n);
    assert_eq!(done.cache_hits, 0);
    assert_eq!(done.cache_misses, n);

    // Served results are byte-identical to a direct local run.
    let direct = execute(&manifest, ExecOptions { threads: 1 }).unwrap();
    let expected_csv = pas_scenario::summary_csv(&direct).render();
    let expected_jsonl = pas_scenario::sink::records_jsonl(&direct);
    let cold_csv = client.results(id, ResultFormat::Csv).unwrap();
    assert_eq!(String::from_utf8(cold_csv).unwrap(), expected_csv);
    let cold_jsonl = client.results(id, ResultFormat::Jsonl).unwrap();
    assert_eq!(String::from_utf8(cold_jsonl).unwrap(), expected_jsonl);

    // Warm resubmission: zero simulations, identical bytes.
    let id2 = client.submit(&toml).unwrap();
    let done2 = client.wait(id2, Duration::from_millis(25)).unwrap();
    assert_eq!(done2.phase, "completed");
    assert_eq!(done2.cache_hits, n, "warm job must be answered from cache");
    assert_eq!(done2.cache_misses, 0, "warm job must not re-simulate");
    let warm_csv = client.results(id2, ResultFormat::Csv).unwrap();
    assert_eq!(String::from_utf8(warm_csv).unwrap(), expected_csv);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn api_rejects_bad_input_and_unknown_jobs() {
    let (client, dir) = boot("errors", ServerOptions::default());

    // Invalid manifests answer 400 with the parse error.
    let err = client.validate("not toml at all [").unwrap_err();
    match err {
        pas_server::ClientError::Api(400, _) => {}
        other => panic!("expected 400, got {other}"),
    }
    let err = client
        .validate("[scenario]\nname = \"x\"\ntypo_section = 1")
        .unwrap_err();
    match err {
        pas_server::ClientError::Api(400, msg) => {
            assert!(msg.contains("typo_section"), "{msg}")
        }
        other => panic!("expected 400, got {other}"),
    }

    // A tiny body whose matrix is astronomically large is rejected up
    // front (the size check runs before anything is materialised).
    let mut huge = registry::builtin("paper-default").unwrap();
    huge.run.replicates = 1_000_000_000_000;
    let err = client.validate(&huge.to_toml()).unwrap_err();
    match err {
        pas_server::ClientError::Api(400, msg) => {
            assert!(msg.contains("runs"), "{msg}")
        }
        other => panic!("expected 400, got {other}"),
    }

    // Unknown jobs are 404; results of unfinished jobs are 409.
    match client.status(999).unwrap_err() {
        pas_server::ClientError::Api(404, _) => {}
        other => panic!("expected 404, got {other}"),
    }
    match client.results(999, ResultFormat::Csv).unwrap_err() {
        pas_server::ClientError::Api(404, _) => {}
        other => panic!("expected 404, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_answers_429() {
    // workers: 0.max(1) = 1 worker; hold it busy with a slow-ish job,
    // then overfill a capacity-1 queue.
    let (client, dir) = boot(
        "backpressure",
        ServerOptions {
            threads: 1,
            queue_capacity: 1,
            workers: 1,
            ..ServerOptions::default()
        },
    );
    let (_, toml) = small_manifest_toml();
    // First job: picked up by the worker. Second: sits in the queue.
    // (Timing-tolerant: even if the first finishes instantly, the queue
    // drains and later submissions succeed — so push until we see 429 or
    // give up after a bound.)
    let mut saw_429 = false;
    for _ in 0..50 {
        match client.submit(&toml) {
            Ok(_) => {}
            Err(pas_server::ClientError::Api(429, _)) => {
                saw_429 = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_429, "a capacity-1 queue must eventually push back");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Observability surface: the built-in `/healthz`, the gated
/// `/metrics` exposition, and the `/jobs/:id/events` SSE stream — all
/// while served results stay byte-identical to a direct run.
#[test]
fn healthz_metrics_and_sse_events() {
    use std::io::{Read as _, Write as _};

    let (client, dir) = boot(
        "obs",
        ServerOptions {
            metrics: true,
            ..ServerOptions::default()
        },
    );
    let (manifest, toml) = small_manifest_toml();
    let n = pas_scenario::expand(&manifest).unwrap().len() as u64;

    // Built-in liveness: version/uptime/queue/mode, no dist router needed.
    let health = client.healthz().unwrap();
    for field in [
        "\"ok\":true",
        "\"version\":",
        "\"uptime_s\":",
        "\"queue_depth\":",
        "\"mode\":\"local\"",
    ] {
        assert!(health.contains(field), "healthz missing {field}: {health}");
    }

    let id = client.submit(&toml).unwrap();

    // Stream the job's events over raw HTTP: chunked SSE, phase +
    // progress events, terminated by `done` when the job completes.
    let mut stream = std::net::TcpStream::connect(client.addr()).unwrap();
    write!(
        stream,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: pas\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("Content-Type: text/event-stream"), "{raw}");
    assert!(raw.contains("Transfer-Encoding: chunked"), "{raw}");
    assert!(raw.contains("event: phase"), "no phase event: {raw}");
    assert!(raw.contains("event: done"), "no done event: {raw}");
    assert!(
        raw.contains(&format!("\"done\":{n}")),
        "final event must carry full progress: {raw}"
    );
    assert!(raw.ends_with("0\r\n\r\n"), "stream must terminate cleanly");

    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed");

    // Unknown jobs get a plain 404, not a stream.
    let mut stream = std::net::TcpStream::connect(client.addr()).unwrap();
    write!(
        stream,
        "GET /jobs/999/events HTTP/1.1\r\nHost: pas\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");

    // The exposition covers every instrumented family with labels, and
    // two scrapes are mutually consistent (counters monotone).
    let text = client.metrics().unwrap();
    for series in [
        "# TYPE pas_server_http_requests_count counter",
        "# TYPE pas_server_http_latency_microseconds histogram",
        "pas_server_http_requests_count{method=\"POST\",route=\"/jobs\",status=\"202\"}",
        "pas_queue_submit_count{outcome=\"accepted\"}",
        "pas_queue_depth_jobs",
        "pas_queue_wait_microseconds_count",
        "pas_cache_lookup_count{outcome=\"miss\"}",
        "pas_cache_store_count",
        "pas_exec_points_count{policy=\"NS\",predictor=\"none\",scenario=\"paper-default\"}",
        "pas_exec_point_microseconds_bucket",
        "pas_server_sse_streams_count",
    ] {
        assert!(
            text.contains(series),
            "metrics missing {series}\n---\n{text}"
        );
    }
    let text2 = client.metrics().unwrap();
    let get = |t: &str, needle: &str| -> u64 {
        t.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next().unwrap().parse().ok())
            .unwrap_or(0)
    };
    let k = "pas_queue_submit_count{outcome=\"accepted\"}";
    assert!(get(&text2, k) >= get(&text, k), "counters must be monotone");

    // Metrics on, results still byte-identical to a direct local run.
    let direct = execute(&manifest, ExecOptions { threads: 1 }).unwrap();
    let expected_csv = pas_scenario::summary_csv(&direct).render();
    let csv = client.results(id, ResultFormat::Csv).unwrap();
    assert_eq!(String::from_utf8(csv).unwrap(), expected_csv);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Observability exposition is opt-in: without `--metrics` the routes
/// answer an actionable `403` naming the flag to restart with — not a
/// misleading 404, not a hang, not an empty body.
#[test]
fn metrics_endpoints_are_gated_with_guidance() {
    let (client, dir) = boot("obs_gated", ServerOptions::default());
    match client.metrics().unwrap_err() {
        pas_server::ClientError::Api(403, msg) => {
            assert!(msg.contains("pas serve --metrics"), "actionable: {msg}")
        }
        other => panic!("expected 403, got {other}"),
    }
    match client
        .metrics_history(pas_server::HistoryFormat::Json)
        .unwrap_err()
    {
        pas_server::ClientError::Api(403, msg) => {
            assert!(msg.contains("pas serve --metrics"), "actionable: {msg}")
        }
        other => panic!("expected 403, got {other}"),
    }
    // Truly unknown routes still 404 — the 403 arm must not swallow them.
    match client.status(9999).unwrap_err() {
        pas_server::ClientError::Api(404, _) => {}
        other => panic!("expected 404, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `--metrics`, `/metrics/history` serves the sampled time series
/// in both negotiated formats, and the JSON parses with the shipped
/// client-side parser.
#[test]
fn metrics_history_serves_sampled_series() {
    let (client, dir) = boot(
        "obs_history",
        ServerOptions {
            metrics: true,
            history_interval: Duration::from_millis(25),
            history_retention: 64,
            ..ServerOptions::default()
        },
    );
    let (_, toml) = small_manifest_toml();
    let id = client.submit(&toml).unwrap();
    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed");
    // Poll until the sampler has two windows over the post-job registry.
    // (The active sampler slot is process-global; a concurrently booted
    // metrics-enabled test server may own it with a slower interval, so
    // the deadline is generous and the interval is not asserted.)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let subs = loop {
        let json = client
            .metrics_history(pas_server::HistoryFormat::Json)
            .unwrap();
        let dump = pas_obs::history::parse_dump(std::str::from_utf8(&json).unwrap())
            .expect("history JSON parses");
        if let Some(s) = dump
            .named("pas.queue.submit.count")
            .find(|s| s.t_ms.len() >= 2)
        {
            break s.clone();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "submit counter never reached two samples"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(subs.values.last().copied().unwrap_or(0.0) >= 1.0);
    assert!(subs.rates.iter().all(|r| *r >= 0.0));
    let svg = client
        .metrics_history(pas_server::HistoryFormat::Svg)
        .unwrap();
    let svg = String::from_utf8(svg).unwrap();
    assert!(svg.starts_with("<svg") && svg.contains("pas.queue.submit.count"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /jobs/:id/report`: every negotiated format is byte-identical
/// to the report `pas report` computes locally on the same batch —
/// cold or warm cache, any thread count — because both paths render
/// through `pas-report`'s canonical reduction.
#[test]
fn served_report_matches_local_report_cold_and_warm() {
    use pas_server::ReportFormat;

    let (client, dir) = boot("report", ServerOptions::default());
    let (manifest, toml) = small_manifest_toml();

    // The local reference, from a sequential direct execution.
    let direct = execute(&manifest, ExecOptions { threads: 1 }).unwrap();
    let report =
        pas_report::Report::from_batch(&direct, &pas_report::ReportOptions::default()).unwrap();
    let expected_md = pas_report::render_md(&report);
    let expected_json = pas_report::render_json(&report);
    let expected_svg = pas_report::render_svg(&report);
    assert!(
        expected_md.contains("PAS − SAS (paired by seed)"),
        "paper-default auto-compares PAS vs SAS"
    );

    // Cold job: simulated on the server's own (parallel) workers.
    let id = client.submit(&toml).unwrap();
    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed", "error: {:?}", done.error);
    let md = client.report(id, ReportFormat::Markdown).unwrap();
    assert_eq!(String::from_utf8(md).unwrap(), expected_md);
    let json = client.report(id, ReportFormat::Json).unwrap();
    assert_eq!(String::from_utf8(json).unwrap(), expected_json);
    let svg = client.report(id, ReportFormat::Svg).unwrap();
    assert_eq!(String::from_utf8(svg).unwrap(), expected_svg);

    // Warm resubmission: answered from cache, identical report bytes.
    let id2 = client.submit(&toml).unwrap();
    let done2 = client.wait(id2, Duration::from_millis(25)).unwrap();
    assert_eq!(done2.phase, "completed");
    assert_eq!(done2.cache_misses, 0, "warm job must not re-simulate");
    let warm_md = client.report(id2, ReportFormat::Markdown).unwrap();
    assert_eq!(String::from_utf8(warm_md).unwrap(), expected_md);

    // Unknown jobs answer 404, incomplete jobs never 200.
    match client.report(999, ReportFormat::Markdown).unwrap_err() {
        pas_server::ClientError::Api(404, _) => {}
        other => panic!("expected 404, got {other}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// SSE edge cases that must never hang a client: an unknown job id
/// answers a plain 404 before any streaming starts, and a job that
/// already finished gets exactly one immediate `done` frame — no
/// initial `phase` echo, no heartbeat wait — and a clean close.
#[test]
fn sse_unknown_job_404s_and_finished_job_gets_immediate_done() {
    use std::io::{Read as _, Write as _};

    let (client, dir) = boot("sse_edge", ServerOptions::default());
    let (_, toml) = small_manifest_toml();

    // Unknown id: a plain 404 response, not an event stream.
    let mut stream = std::net::TcpStream::connect(client.addr()).unwrap();
    write!(
        stream,
        "GET /jobs/424242/events HTTP/1.1\r\nHost: pas\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
    assert!(
        !raw.contains("text/event-stream"),
        "404 must not open a stream: {raw}"
    );

    // Run a job to completion *before* subscribing.
    let id = client.submit(&toml).unwrap();
    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed");

    // The late subscriber sees one `done` frame, immediately: well under
    // the 1s heartbeat cadence, so a hang would trip the deadline.
    let t0 = std::time::Instant::now();
    let mut stream = std::net::TcpStream::connect(client.addr()).unwrap();
    write!(
        stream,
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: pas\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "finished job must answer immediately, took {:?}",
        t0.elapsed()
    );
    assert!(raw.contains("Content-Type: text/event-stream"), "{raw}");
    assert_eq!(raw.matches("event: done").count(), 1, "{raw}");
    assert_eq!(
        raw.matches("event: phase").count(),
        0,
        "no phase echo for a finished job: {raw}"
    );
    assert!(!raw.contains(": hb"), "no heartbeat wait: {raw}");
    assert!(raw.ends_with("0\r\n\r\n"), "clean chunked close: {raw}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /jobs/:id/trace`: submit with an explicit trace id, then fetch
/// the stitched span tree in all three negotiated formats. Local-exec
/// jobs produce `job` → `job.queued` + `job.execute` → `exec.point`
/// chains; the critical path accounts for the job wall clock.
#[test]
fn trace_endpoint_negotiates_all_three_formats() {
    use pas_server::TraceFormat;

    let (client, dir) = boot(
        "trace",
        ServerOptions {
            metrics: true,
            ..ServerOptions::default()
        },
    );
    let (_, toml) = small_manifest_toml();
    let trace_id = pas_obs::trace::mint_id();
    let (id, trace) = client.submit_traced(&toml, trace_id).unwrap();
    assert_eq!(trace, trace_id, "server must adopt the client's trace id");
    let done = client.wait(id, Duration::from_millis(25)).unwrap();
    assert_eq!(done.phase, "completed");
    assert_eq!(
        done.trace.as_deref(),
        Some(format!("{trace_id:016x}").as_str()),
        "status carries the trace id"
    );

    let chrome = String::from_utf8(client.trace(id, TraceFormat::Chrome).unwrap()).unwrap();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    for needle in [
        "\"ph\":\"X\"",
        "\"name\":\"job\"",
        "\"name\":\"job.execute\"",
    ] {
        assert!(chrome.contains(needle), "chrome missing {needle}: {chrome}");
    }

    let tree = String::from_utf8(client.trace(id, TraceFormat::Tree).unwrap()).unwrap();
    assert!(tree.contains("job"), "{tree}");
    assert!(tree.contains("job.execute"), "{tree}");

    let cp = String::from_utf8(client.trace(id, TraceFormat::CriticalPath).unwrap()).unwrap();
    assert!(cp.contains("critical path"), "{cp}");
    assert!(cp.contains('%'), "{cp}");

    // Unknown jobs 404 here like everywhere else.
    match client.trace(999, TraceFormat::Chrome).unwrap_err() {
        pas_server::ClientError::Api(404, _) => {}
        other => panic!("expected 404, got {other}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The trace endpoint is exposition, so it is gated with `/metrics`;
/// collection still runs, it is only the route that refuses (with the
/// same actionable 403 the other observability routes use).
#[test]
fn trace_endpoint_is_gated_with_metrics() {
    use pas_server::TraceFormat;

    let (client, dir) = boot("trace_gated", ServerOptions::default());
    let (_, toml) = small_manifest_toml();
    let id = client.submit(&toml).unwrap();
    client.wait(id, Duration::from_millis(25)).unwrap();
    match client.trace(id, TraceFormat::Chrome).unwrap_err() {
        pas_server::ClientError::Api(403, msg) => {
            assert!(msg.contains("pas serve --metrics"), "actionable: {msg}")
        }
        other => panic!("expected 403, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
