//! Cache-key stability and predictor-distinctness guarantees.
//!
//! The predictor refactor changed the `Policy` serialisation that feeds
//! the content-addressed result cache. Two promises hold it together:
//!
//! 1. **Warm caches stay warm** — manifests that never mention a
//!    predictor produce byte-identical keys to the pre-refactor code.
//!    The hex digests below were computed on the commit *before* the
//!    predictor layer existed and are pinned literally; if any of them
//!    changes, every deployed cache goes cold and this test fails first.
//! 2. **Distinct predictors never collide** — every predictor variant,
//!    and every distinct parameterisation of one, produces a different
//!    key for the same environment/seed coordinate.

use pas_scenario::{expand, registry, AxisValues, Manifest};
use pas_server::ResultCache;

/// `(matrix index, sha256 hex)` pairs captured from the pre-predictor
/// build for `paper-default`, spanning every policy kind and both ends
/// of the matrix.
const PAPER_DEFAULT_PINNED: [(usize, &str); 5] = [
    (
        0,
        "c18f3e086595dc50bd35346733474668bb22afc2da80a35ea011afb8544c63bd",
    ),
    (
        1,
        "f58f41d53e8ae4e40487803a5973119d1b36494685522ed031918beea360a75a",
    ),
    (
        20,
        "7ca159a6501a142406263ee2a2f9bfd10c7fc794135247f484b79fc63bc32a70",
    ),
    (
        200,
        "64e5a0e89a343a86173ccae8228b1201b6c1600d85844eda4fc84e30e852e493",
    ),
    (
        539,
        "9d1dbd3445fd0a95b94d5fa71c6712caa74a84ef925abb29a7dc7565fc718bde",
    ),
];

/// Pre-refactor key of `plume-monitoring` point 0 (a no-sweep batch, so
/// the assignments section of the hash is empty).
const PLUME_PINNED: &str = "14d9be646dffe6ef034780e16f6f3bf946e8657867307657ddd63e52e64e0a04";

#[test]
fn predictorless_manifests_keep_their_pre_refactor_keys() {
    let m = registry::builtin("paper-default").unwrap();
    let pts = expand(&m).unwrap();
    for (index, want) in PAPER_DEFAULT_PINNED {
        assert_eq!(
            ResultCache::key(&m, &pts[index]),
            want,
            "paper-default point {index} went cache-cold"
        );
    }
    let plume = registry::builtin("plume-monitoring").unwrap();
    let plume_pts = expand(&plume).unwrap();
    assert_eq!(ResultCache::key(&plume, &plume_pts[0]), PLUME_PINNED);
}

fn single_pas_manifest(policy_lines: &str, sweep: &str) -> Manifest {
    let src = format!(
        r#"
        [scenario]
        name = "key-distinct"
        [deployment]
        region = [40.0, 40.0]
        nodes = 30
        range_m = 10.0
        kind = "uniform"
        [stimulus]
        kind = "radial"
        source = [0.0, 0.0]
        profile = {{ kind = "constant", speed = 0.5 }}
        [run]
        base_seed = 1
        replicates = 1
        [[policies]]
        kind = "pas"
        {policy_lines}
        {sweep}
    "#
    );
    Manifest::parse(&src).unwrap()
}

#[test]
fn every_predictor_variant_gets_a_distinct_key() {
    let m = single_pas_manifest(
        "",
        "[sweep]\npredictor = [\"planar\", \"non_directional\", \"kalman\", \"quantile\"]",
    );
    let pts = expand(&m).unwrap();
    assert_eq!(pts.len(), 4);
    let keys: std::collections::BTreeSet<String> =
        pts.iter().map(|p| ResultCache::key(&m, p)).collect();
    assert_eq!(keys.len(), 4, "predictor variants must never share a key");
}

#[test]
fn predictor_parameters_are_part_of_the_key() {
    let default_kalman = single_pas_manifest("predictor = \"kalman\"", "");
    let tuned_kalman = single_pas_manifest(
        "predictor = { kind = \"kalman\", process_var = 0.2, measurement_var = 0.9 }",
        "",
    );
    let default_quantile = single_pas_manifest("predictor = \"quantile\"", "");
    let tuned_quantile = single_pas_manifest("predictor = { kind = \"quantile\", k = 3 }", "");

    let key_of = |m: &Manifest| {
        let pts = expand(m).unwrap();
        ResultCache::key(m, &pts[0])
    };
    let keys = [
        key_of(&default_kalman),
        key_of(&tuned_kalman),
        key_of(&default_quantile),
        key_of(&tuned_quantile),
    ];
    let distinct: std::collections::BTreeSet<&String> = keys.iter().collect();
    assert_eq!(distinct.len(), keys.len(), "parameterisations collided");
}

#[test]
fn explicit_kind_default_predictor_matches_bare_key_semantics() {
    // `predictor = "planar"` on a PAS policy is behaviourally identical
    // to no declaration; its key may differ (the declaration is hashed),
    // but the *label* and the executed policy must match.
    let bare = single_pas_manifest("", "");
    let planar = single_pas_manifest("predictor = \"planar\"", "");
    let a = &expand(&bare).unwrap()[0];
    let b = &expand(&planar).unwrap()[0];
    assert_eq!(a.policy_label, "PAS");
    assert_eq!(b.policy_label, "PAS");
    assert_eq!(a.policy.predictor(), b.policy.predictor());
}

#[test]
fn node_density_assignments_change_the_key() {
    let m = single_pas_manifest("", "[sweep]\nnodes = [20, 30, 45]");
    let pts = expand(&m).unwrap();
    assert_eq!(pts.len(), 3);
    let keys: std::collections::BTreeSet<String> =
        pts.iter().map(|p| ResultCache::key(&m, p)).collect();
    assert_eq!(keys.len(), 3, "density points must never share a key");
}

#[test]
fn shrinking_a_names_axis_preserves_overlapping_keys() {
    // The environment hash strips the sweep grid, so a re-submission
    // sweeping fewer predictors still hits the warm entries.
    let full = single_pas_manifest(
        "",
        "[sweep]\npredictor = [\"planar\", \"kalman\", \"quantile\"]",
    );
    let mut narrow = full.clone();
    narrow.sweep[0].values = AxisValues::Names(vec!["kalman".to_string()]);
    let full_pts = expand(&full).unwrap();
    let narrow_pts = expand(&narrow).unwrap();
    assert_eq!(
        ResultCache::key(&full, &full_pts[1]),
        ResultCache::key(&narrow, &narrow_pts[0]),
        "same coordinate, different grids: keys must match"
    );
}
