//! Cache correctness: warm results must be byte-identical to cold ones,
//! and damaged entries must fall back to recomputation.

use pas_scenario::{execute, registry, BatchResult, ExecOptions, Manifest};
use pas_server::cache::execute_with_cache;
use pas_server::ResultCache;
use std::path::PathBuf;

fn temp_cache(tag: &str) -> (PathBuf, ResultCache) {
    let dir = std::env::temp_dir().join(format!("pas_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), ResultCache::open(&dir).unwrap())
}

fn assert_batches_bit_identical(a: &BatchResult, b: &BatchResult, context: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{context}: record count");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.policy_label, y.policy_label, "{context}");
        assert_eq!(x.seed, y.seed, "{context}");
        assert_eq!(x.x.to_bits(), y.x.to_bits(), "{context}");
        assert_eq!(x.assignments, y.assignments, "{context}");
        assert_eq!(x.delay_s.to_bits(), y.delay_s.to_bits(), "{context}");
        assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits(), "{context}");
        assert_eq!(x.reached, y.reached, "{context}");
        assert_eq!(x.detected, y.detected, "{context}");
        assert_eq!(x.missed, y.missed, "{context}");
        assert_eq!(x.requests_sent, y.requests_sent, "{context}");
        assert_eq!(x.responses_sent, y.responses_sent, "{context}");
        assert_eq!(x.events_processed, y.events_processed, "{context}");
        assert_eq!(x.duration_s.to_bits(), y.duration_s.to_bits(), "{context}");
    }
    assert_eq!(a.summaries.len(), b.summaries.len(), "{context}");
    for (x, y) in a.summaries.iter().zip(&b.summaries) {
        assert_eq!(x.policy_label, y.policy_label, "{context}");
        assert_eq!(
            x.delay_mean_s.to_bits(),
            y.delay_mean_s.to_bits(),
            "{context}"
        );
        assert_eq!(
            x.delay_std_s.to_bits(),
            y.delay_std_s.to_bits(),
            "{context}"
        );
        assert_eq!(
            x.energy_mean_j.to_bits(),
            y.energy_mean_j.to_bits(),
            "{context}"
        );
        assert_eq!(
            x.energy_std_j.to_bits(),
            y.energy_std_j.to_bits(),
            "{context}"
        );
        assert_eq!(x.n, y.n, "{context}");
    }
    // The rendered artefacts (what `pas submit` hands back) too.
    assert_eq!(
        pas_scenario::summary_csv(a).render(),
        pas_scenario::summary_csv(b).render(),
        "{context}: CSV bytes"
    );
    assert_eq!(
        pas_scenario::sink::records_jsonl(a),
        pas_scenario::sink::records_jsonl(b),
        "{context}: JSONL bytes"
    );
}

/// Property: over a family of manifest variants (every built-in scenario,
/// shrunk, across channel/replicate/sweep perturbations), a cold cached
/// run equals the direct path bit-for-bit, and a warm re-run — all hits,
/// zero simulations — equals it again.
#[test]
fn cached_batches_are_bit_identical_cold_and_warm() {
    let (dir, cache) = temp_cache("prop");
    for (name, _) in pas_scenario::registry::BUILTINS {
        let mut m = registry::builtin(name).unwrap();
        // Shrink to keep the whole family fast in debug CI.
        if !m.sweep.is_empty() {
            m.sweep[0].values.truncate(2);
        }
        m.run.replicates = 2;
        for variant in 0..3u64 {
            let mut v = m.clone();
            v.run.base_seed = m.run.base_seed + 100 * variant;
            if variant == 2 && !v.sweep.is_empty() {
                v.sweep[0].values.truncate(1);
            }
            let n = pas_scenario::expand(&v).unwrap().len() as u64;

            let direct = execute(&v, ExecOptions { threads: 1 }).unwrap();
            let (cold, cold_stats) =
                execute_with_cache(&v, ExecOptions::default(), &cache).unwrap();
            let (warm, warm_stats) =
                execute_with_cache(&v, ExecOptions::default(), &cache).unwrap();

            let ctx = format!("{name} variant {variant}");
            assert_batches_bit_identical(&direct, &cold, &format!("{ctx} (cold)"));
            assert_batches_bit_identical(&direct, &warm, &format!("{ctx} (warm)"));
            assert_eq!(cold_stats.hits + cold_stats.misses, n, "{ctx}");
            assert_eq!(warm_stats.hits, n, "{ctx}: warm run must be all hits");
            assert_eq!(warm_stats.misses, 0, "{ctx}: warm run must not simulate");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overlap: a second manifest whose grid intersects the first one's only
/// recomputes the genuinely new points.
#[test]
fn overlapping_batches_reuse_shared_points() {
    let (dir, cache) = temp_cache("overlap");
    let mut a = registry::builtin("paper-default").unwrap();
    a.sweep[0].values = vec![2.0, 8.0].into();
    a.run.replicates = 2;
    let (_, first) = execute_with_cache(&a, ExecOptions::default(), &cache).unwrap();
    assert_eq!(first.hits, 0);

    let mut b = a.clone();
    b.name = "paper-default-extended".to_string();
    b.sweep[0].values = vec![8.0, 32.0].into(); // shares the 8.0 column
    b.run.replicates = 3; // shares seeds 0..2 of each point
    let n_b = pas_scenario::expand(&b).unwrap().len() as u64;
    let (_, second) = execute_with_cache(&b, ExecOptions::default(), &cache).unwrap();
    // Shared: x = 8.0 × every policy × the 2 common seeds.
    let shared = (a.policies.len() * 2) as u64;
    assert_eq!(second.hits, shared, "only the overlap is reused");
    assert_eq!(second.misses, n_b - shared);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Evicting or corrupting entries silently falls back to recomputation
/// with identical results (checksums catch the damage).
#[test]
fn evicted_and_corrupted_entries_fall_back_to_recomputation() {
    let (dir, cache) = temp_cache("corrupt");
    let mut m = registry::builtin("paper-default").unwrap();
    m.sweep[0].values = vec![4.0].into();
    m.run.replicates = 2;
    let n = pas_scenario::expand(&m).unwrap().len() as u64;

    let (baseline, _) = execute_with_cache(&m, ExecOptions::default(), &cache).unwrap();
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "run"))
        .collect();
    assert_eq!(entries.len(), n as usize);

    // Evict one entry, corrupt another three different ways.
    std::fs::remove_file(&entries[0]).unwrap();
    std::fs::write(&entries[1], "garbage, not an entry").unwrap();
    let valid = std::fs::read_to_string(&entries[2]).unwrap();
    std::fs::write(&entries[2], valid.replace("delay=", "delay=f")).unwrap();
    let truncated: String = std::fs::read_to_string(&entries[3])
        .unwrap()
        .chars()
        .take(40)
        .collect();
    std::fs::write(&entries[3], truncated).unwrap();

    let (recovered, stats) = execute_with_cache(&m, ExecOptions::default(), &cache).unwrap();
    assert_eq!(stats.misses, 4, "each damaged entry recomputes once");
    assert_eq!(stats.hits, n - 4);
    assert_batches_bit_identical(&baseline, &recovered, "after corruption");

    // The recomputation healed the cache: a third run is all hits.
    let (_, healed) = execute_with_cache(&m, ExecOptions::default(), &cache).unwrap();
    assert_eq!(healed.hits, n);
    assert_eq!(healed.misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache directory is the durable state: reopening it (a "restart")
/// keeps every entry warm.
#[test]
fn cache_survives_reopen() {
    let (dir, cache) = temp_cache("reopen");
    let mut m: Manifest = registry::builtin("gas-leak-city").unwrap();
    m.sweep[0].values.truncate(1);
    m.run.replicates = 1;
    let n = pas_scenario::expand(&m).unwrap().len() as u64;
    let (_, first) = execute_with_cache(&m, ExecOptions::default(), &cache).unwrap();
    assert_eq!(first.misses, n);
    drop(cache);

    let reopened = ResultCache::open(&dir).unwrap();
    let (_, second) = execute_with_cache(&m, ExecOptions::default(), &reopened).unwrap();
    assert_eq!(second.hits, n, "entries persist across restarts");
    let _ = std::fs::remove_dir_all(&dir);
}
