//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple warmup-then-measure timing
//! loop printing median ns/iter. No statistics, plots, or baselines; good
//! enough to rank hot paths while the real crate is unavailable offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Label for a parameterised benchmark (`group/function/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new<P: Display>(function: &str, param: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{param}"),
        }
    }
}

/// Per-benchmark timing driver passed to the closure as `b`.
pub struct Bencher {
    /// Measured iterations (set by the owning group's `sample_size`).
    iters: u64,
    /// Median ns/iter of the last `iter` call, for reporting.
    last_ns: f64,
}

impl Bencher {
    /// Time `f`, recording the median over `iters` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup run keeps cold-start effects out of the samples.
        black_box(f());
        let mut samples: Vec<f64> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns = samples[samples.len() / 2];
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples,
        last_ns: f64::NAN,
    };
    f(&mut b);
    if b.last_ns.is_nan() {
        println!("{name:<48} (no measurement)");
    } else {
        println!(
            "{name:<48} {:>14.0} ns/iter (median of {samples})",
            b.last_ns
        );
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Benchmark a closure under `label` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, label), self.samples, &mut f);
        self
    }

    /// Benchmark a closure taking a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.samples, &mut |b| f(b, input));
        self
    }

    /// End the group (layout compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Default measured samples per benchmark.
    pub default_samples: u64,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            _parent: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let samples = self.samples();
        run_one(label, samples, &mut f);
        self
    }

    fn samples(&self) -> u64 {
        if self.default_samples == 0 {
            30
        } else {
            self.default_samples
        }
    }
}

/// Bundle benchmark functions under a single runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
