//! No-op derive macros mirroring `serde_derive`.
//!
//! `#[derive(Serialize, Deserialize)]` across the workspace are
//! forward-looking annotations; these derives accept them (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
