//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. The workspace only uses `#[derive(Serialize, Deserialize)]`
//! as forward-looking annotations — nothing serialises through serde yet
//! (the `pas-scenario` manifest layer has its own hand-written TOML codec).
//! This crate keeps those annotations compiling: the traits are empty
//! markers and the derives (re-exported from the in-tree `serde_derive`)
//! expand to nothing. Replacing this with the real crates.io `serde` is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the
/// stand-in; the lifetime parameter mirrors the real trait's signature).
pub trait Deserialize<'de>: Sized {}
