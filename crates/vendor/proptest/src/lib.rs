//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, numeric-range strategies, tuple
//! strategies, `prop_map`, and `prop::collection::vec` — on top of a small
//! deterministic splitmix64 generator. No shrinking: a failing case panics
//! with the ordinary assertion message, and the per-test RNG stream is
//! deterministic (derived from the test name), so failures reproduce
//! exactly on re-run.
//!
//! Case count defaults to 64 and can be raised with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Number of generated cases per property (env `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic splitmix64 stream used to generate test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream for the named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for test-input generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test values (the proptest trait, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (needed by `prop_oneof!` over
    /// heterogeneous arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end - self.start) as u64;
                assert!(width > 0, "empty integer range strategy");
                self.start + rng.next_below(width) as $t
            }
        }
    )*};
}
int_range_strategy!(u64, usize, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The proptest `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// `proptest::prop` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `Vec` strategy: length uniform in `size`, elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let width = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.next_below(width) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert within a property (no shrinking: plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws [`cases`] inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..$crate::cases() {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}
