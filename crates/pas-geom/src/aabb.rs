//! Axis-aligned bounding boxes.
//!
//! Deployment regions (the paper's "specified region") and grid extents are
//! AABBs; the spatial hash and the diffusion grids are sized from them.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle given by its min and max corners.
///
/// Invariant: `min.x <= max.x && min.y <= max.y` (enforced by constructors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl Aabb {
    /// Construct from two opposite corners (any order).
    #[inline]
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Rectangle `[0, w] × [0, h]`.
    ///
    /// # Panics
    /// Panics if `w` or `h` is negative.
    #[inline]
    pub fn from_size(w: f64, h: f64) -> Self {
        assert!(w >= 0.0 && h >= 0.0, "Aabb::from_size: negative extent");
        Aabb {
            min: Vec2::ZERO,
            max: Vec2::new(w, h),
        }
    }

    /// Smallest box containing every point; `None` for an empty slice.
    pub fn from_points(points: &[Vec2]) -> Option<Self> {
        let (&first, rest) = points.split_first()?;
        let mut bb = Aabb {
            min: first,
            max: first,
        };
        for &p in rest {
            bb.min = bb.min.min(p);
            bb.max = bb.max.max(p);
        }
        Some(bb)
    }

    /// Width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if the two boxes overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Grow by `margin` on every side.
    ///
    /// A negative margin shrinks the box; it collapses to its centre rather
    /// than inverting.
    pub fn inflate(&self, margin: f64) -> Aabb {
        let c = self.center();
        let hw = (self.width() * 0.5 + margin).max(0.0);
        let hh = (self.height() * 0.5 + margin).max(0.0);
        Aabb {
            min: c - Vec2::new(hw, hh),
            max: c + Vec2::new(hw, hh),
        }
    }

    /// Clamp a point into the box.
    #[inline]
    pub fn clamp_point(&self, p: Vec2) -> Vec2 {
        Vec2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The four corners, counter-clockwise from `min`.
    pub fn corners(&self) -> [Vec2; 4] {
        [
            self.min,
            Vec2::new(self.max.x, self.min.y),
            self.max,
            Vec2::new(self.min.x, self.max.y),
        ]
    }

    /// Map a unit-square coordinate `(u, v) ∈ [0,1]²` to a point in the box.
    #[inline]
    pub fn lerp_point(&self, u: f64, v: f64) -> Vec2 {
        Vec2::new(
            self.min.x + u * self.width(),
            self.min.y + v * self.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises_corners() {
        let bb = Aabb::new(Vec2::new(5.0, -1.0), Vec2::new(-2.0, 3.0));
        assert_eq!(bb.min, Vec2::new(-2.0, -1.0));
        assert_eq!(bb.max, Vec2::new(5.0, 3.0));
    }

    #[test]
    fn from_size_and_measures() {
        let bb = Aabb::from_size(4.0, 2.0);
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(bb.area(), 8.0);
        assert_eq!(bb.center(), Vec2::new(2.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "negative extent")]
    fn from_size_rejects_negative() {
        let _ = Aabb::from_size(-1.0, 1.0);
    }

    #[test]
    fn from_points() {
        assert_eq!(Aabb::from_points(&[]), None);
        let pts = [
            Vec2::new(1.0, 5.0),
            Vec2::new(-2.0, 0.0),
            Vec2::new(3.0, 2.0),
        ];
        let bb = Aabb::from_points(&pts).unwrap();
        assert_eq!(bb.min, Vec2::new(-2.0, 0.0));
        assert_eq!(bb.max, Vec2::new(3.0, 5.0));
    }

    #[test]
    fn containment() {
        let bb = Aabb::from_size(10.0, 10.0);
        assert!(bb.contains(Vec2::new(5.0, 5.0)));
        assert!(bb.contains(Vec2::ZERO)); // boundary
        assert!(bb.contains(Vec2::new(10.0, 10.0))); // boundary
        assert!(!bb.contains(Vec2::new(10.1, 5.0)));
        assert!(!bb.contains(Vec2::new(5.0, -0.1)));
    }

    #[test]
    fn intersection() {
        let a = Aabb::from_size(10.0, 10.0);
        let b = Aabb::new(Vec2::new(5.0, 5.0), Vec2::new(15.0, 15.0));
        let c = Aabb::new(Vec2::new(11.0, 11.0), Vec2::new(12.0, 12.0));
        let d = Aabb::new(Vec2::new(10.0, 0.0), Vec2::new(20.0, 10.0)); // touching edge
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&d));
    }

    #[test]
    fn inflate_and_clamp() {
        let bb = Aabb::from_size(10.0, 10.0);
        let big = bb.inflate(1.0);
        assert_eq!(big.min, Vec2::new(-1.0, -1.0));
        assert_eq!(big.max, Vec2::new(11.0, 11.0));
        // Shrinking past degenerate collapses to the centre.
        let tiny = bb.inflate(-6.0);
        assert_eq!(tiny.min, tiny.max);
        assert_eq!(tiny.center(), bb.center());
        assert_eq!(bb.clamp_point(Vec2::new(-5.0, 20.0)), Vec2::new(0.0, 10.0));
    }

    #[test]
    fn corners_ccw_and_lerp() {
        let bb = Aabb::from_size(2.0, 4.0);
        let cs = bb.corners();
        assert_eq!(cs[0], Vec2::ZERO);
        assert_eq!(cs[2], Vec2::new(2.0, 4.0));
        assert_eq!(bb.lerp_point(0.5, 0.5), bb.center());
        assert_eq!(bb.lerp_point(1.0, 0.0), Vec2::new(2.0, 0.0));
    }
}
