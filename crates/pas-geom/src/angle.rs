//! Angle utilities.
//!
//! PAS's arrival-time estimator projects a neighbour's velocity onto the
//! displacement toward the querying node: `t = |IX| · cos θ / |v|` where `θ`
//! is the *included angle* between the velocity and the displacement. These
//! helpers keep all angle math in one tested place.

use crate::vec2::Vec2;
use core::f64::consts::{PI, TAU};

/// Normalise an angle into `(-π, π]`.
#[inline]
pub fn normalize_angle(a: f64) -> f64 {
    // rem_euclid keeps the result in [0, τ); shift into (-π, π].
    let r = a.rem_euclid(TAU);
    if r > PI {
        r - TAU
    } else {
        r
    }
}

/// Included angle between two vectors, in `[0, π]`.
///
/// Returns 0 if either vector is zero (the projection degenerates; callers
/// treat it as "aligned", which is the conservative choice for arrival-time
/// prediction — it never hides an approaching front).
#[inline]
pub fn included_angle(a: Vec2, b: Vec2) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    // Clamp: rounding can push the cosine slightly outside [-1, 1].
    let c = (a.dot(b) / (na * nb)).clamp(-1.0, 1.0);
    c.acos()
}

/// Cosine of the included angle between two vectors, in `[-1, 1]`.
///
/// Faster than `included_angle(a, b).cos()` and exactly what the PAS
/// estimator needs. Returns 1.0 if either vector is zero (see
/// [`included_angle`] for the rationale).
#[inline]
pub fn included_cos(a: Vec2, b: Vec2) -> f64 {
    let nn = a.norm() * b.norm();
    if nn == 0.0 {
        return 1.0;
    }
    (a.dot(b) / nn).clamp(-1.0, 1.0)
}

/// Signed angular difference `b - a` normalised into `(-π, π]`.
#[inline]
pub fn angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(b - a)
}

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * (PI / 180.0)
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * (180.0 / PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;
    use core::f64::consts::FRAC_PI_2;

    #[test]
    fn normalize_into_range() {
        assert!(approx_eq(normalize_angle(0.0), 0.0));
        assert!(approx_eq(normalize_angle(TAU), 0.0));
        assert!(approx_eq(normalize_angle(PI + 0.1), -PI + 0.1));
        assert!(approx_eq(normalize_angle(-PI - 0.1), PI - 0.1));
        assert!(approx_eq(normalize_angle(PI), PI));
        assert!(approx_eq(normalize_angle(3.0 * TAU + 1.0), 1.0));
    }

    #[test]
    fn normalize_always_in_bounds() {
        let mut a = -50.0;
        while a < 50.0 {
            let n = normalize_angle(a);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "angle {a} -> {n}");
            a += 0.37;
        }
    }

    #[test]
    fn included_angle_basics() {
        assert!(approx_eq(included_angle(Vec2::UNIT_X, Vec2::UNIT_X), 0.0));
        assert!(approx_eq(
            included_angle(Vec2::UNIT_X, Vec2::UNIT_Y),
            FRAC_PI_2
        ));
        assert!(approx_eq(included_angle(Vec2::UNIT_X, -Vec2::UNIT_X), PI));
        // Zero vector degenerates to 0.
        assert_eq!(included_angle(Vec2::ZERO, Vec2::UNIT_X), 0.0);
    }

    #[test]
    fn included_angle_symmetric() {
        let a = Vec2::new(1.0, 0.3);
        let b = Vec2::new(-0.4, 2.0);
        assert!(approx_eq(included_angle(a, b), included_angle(b, a)));
    }

    #[test]
    fn included_cos_matches_angle() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert!(approx_eq(included_cos(a, b), included_angle(a, b).cos()));
        assert_eq!(included_cos(Vec2::ZERO, b), 1.0);
    }

    #[test]
    fn included_cos_scale_invariant() {
        let a = Vec2::new(0.2, 0.9);
        let b = Vec2::new(1.4, -0.3);
        assert!(approx_eq(
            included_cos(a, b),
            included_cos(a * 7.0, b * 0.01)
        ));
    }

    #[test]
    fn diff_wraps() {
        assert!(approx_eq(angle_diff(0.1, -0.1), -0.2));
        // Wrapping through π: from +3 rad to -3 rad is +0.28… rad, not -6 rad.
        let d = angle_diff(3.0, -3.0);
        assert!(d > 0.0 && d < 0.3);
    }

    #[test]
    fn degree_conversions() {
        assert!(approx_eq(deg_to_rad(180.0), PI));
        assert!(approx_eq(rad_to_deg(PI), 180.0));
        assert!(approx_eq(rad_to_deg(deg_to_rad(37.5)), 37.5));
    }
}
