//! Floating-point helpers: approximate comparison and total ordering.
//!
//! Simulation code compares `f64` times and distances constantly; the helpers
//! here centralise the tolerance conventions so every crate agrees on what
//! "equal" means, and provide a total order (NaN-hostile) used by the event
//! queue and the fast-marching solver.

/// Default absolute/relative tolerance used by [`approx_eq`].
///
/// Positions are metres and times are seconds in this workspace; 1e-9 is far
/// below any physically meaningful difference while staying well above f64
/// rounding noise for the magnitudes we simulate (< 1e6).
pub const EPS: f64 = 1e-9;

/// `true` if `a` and `b` are equal within [`EPS`], scaled by magnitude.
///
/// Uses the standard mixed absolute/relative test:
/// `|a - b| <= EPS * max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, EPS)
}

/// [`approx_eq`] with a caller-supplied tolerance.
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= eps * scale
}

/// `true` if `a <= b` within tolerance (i.e. `a < b` or `approx_eq`).
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a < b || approx_eq(a, b)
}

/// `true` if `a >= b` within tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a > b || approx_eq(a, b)
}

/// Total-order comparison for `f64` that panics on NaN.
///
/// The simulator forbids NaN everywhere (times, distances, energies); hitting
/// one is a logic error we want to fail loudly on rather than silently
/// mis-order a heap.
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> core::cmp::Ordering {
    assert!(!a.is_nan() && !b.is_nan(), "NaN reached an ordered context");
    a.partial_cmp(&b).expect("non-NaN floats always compare")
}

/// Minimum by [`cmp_f64`]; panics on NaN.
#[inline]
pub fn min_f64(a: f64, b: f64) -> f64 {
    match cmp_f64(a, b) {
        core::cmp::Ordering::Greater => b,
        _ => a,
    }
}

/// Maximum by [`cmp_f64`]; panics on NaN.
#[inline]
pub fn max_f64(a: f64, b: f64) -> f64 {
    match cmp_f64(a, b) {
        core::cmp::Ordering::Less => b,
        _ => a,
    }
}

/// Clamp `x` into `[lo, hi]` (requires `lo <= hi`).
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo must not exceed hi");
    x.max(lo).min(hi)
}

/// Linear interpolation `a + t (b - a)`; `t` outside `[0,1]` extrapolates.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

/// Inverse of [`lerp`]: the `t` with `lerp(a, b, t) == x`.
///
/// Returns 0 when `a == b` (degenerate interval).
#[inline]
pub fn inv_lerp(a: f64, b: f64, x: f64) -> f64 {
    let d = b - a;
    if d == 0.0 {
        0.0
    } else {
        (x - a) / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        // 1e9 and 1e9 + 0.5 differ by 5e-10 relative — within tolerance.
        assert!(approx_eq(1.0e9, 1.0e9 + 0.5));
        assert!(!approx_eq(1.0e9, 1.0e9 + 10.0));
    }

    #[test]
    fn approx_le_ge() {
        assert!(approx_le(1.0, 1.0 + 1e-12));
        assert!(approx_le(0.9, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(approx_ge(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.1, 1.0));
        assert!(!approx_ge(0.9, 1.0));
    }

    #[test]
    fn cmp_orders() {
        assert_eq!(cmp_f64(1.0, 2.0), Ordering::Less);
        assert_eq!(cmp_f64(2.0, 1.0), Ordering::Greater);
        assert_eq!(cmp_f64(1.0, 1.0), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cmp_rejects_nan() {
        let _ = cmp_f64(f64::NAN, 0.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(min_f64(1.0, 2.0), 1.0);
        assert_eq!(max_f64(1.0, 2.0), 2.0);
        assert_eq!(min_f64(-0.0, 0.0), -0.0);
    }

    #[test]
    fn clamp_and_lerp() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(lerp(0.0, 10.0, 0.25), 2.5);
        assert_eq!(inv_lerp(0.0, 10.0, 2.5), 0.25);
        assert_eq!(inv_lerp(3.0, 3.0, 3.0), 0.0);
    }

    #[test]
    fn lerp_inv_lerp_roundtrip() {
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let x = lerp(-4.0, 9.0, t);
            assert!(approx_eq(inv_lerp(-4.0, 9.0, x), t));
        }
    }
}
