//! Primitive shapes: circles and line segments.
//!
//! Circles model transmission disks (unit-disk radio) and isotropic stimulus
//! fronts; segments support distance-to-boundary queries on extracted
//! contours.

use crate::aabb::Aabb;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A circle (centre + radius).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Centre point.
    pub center: Vec2,
    /// Radius (must be non-negative).
    pub radius: f64,
}

impl Circle {
    /// Construct a circle.
    ///
    /// # Panics
    /// Panics if `radius` is negative or non-finite.
    #[inline]
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(
            radius >= 0.0 && radius.is_finite(),
            "Circle radius must be finite and non-negative"
        );
        Circle { center, radius }
    }

    /// `true` if `p` is inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Signed distance from `p` to the circle boundary.
    ///
    /// Negative inside, positive outside, zero on the boundary.
    #[inline]
    pub fn signed_distance(&self, p: Vec2) -> f64 {
        self.center.distance(p) - self.radius
    }

    /// `true` if the two circles overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(other.center) <= r * r
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        core::f64::consts::PI * self.radius * self.radius
    }

    /// Bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        let r = Vec2::splat(self.radius);
        Aabb {
            min: self.center - r,
            max: self.center + r,
        }
    }

    /// `n` points evenly spaced on the boundary, counter-clockwise from +X.
    pub fn sample_boundary(&self, n: usize) -> Vec<Vec2> {
        (0..n)
            .map(|i| {
                let a = core::f64::consts::TAU * (i as f64) / (n as f64);
                self.center + Vec2::from_polar(self.radius, a)
            })
            .collect()
    }
}

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Construct a segment.
    #[inline]
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Vec2 {
        (self.a + self.b) * 0.5
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return self.a; // degenerate segment
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance_to(&self, p: Vec2) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Direction unit vector, or `None` for a degenerate segment.
    #[inline]
    pub fn direction(&self) -> Option<Vec2> {
        (self.b - self.a).try_normalize()
    }

    /// Outward normal (left of travel direction), or `None` if degenerate.
    #[inline]
    pub fn normal(&self) -> Option<Vec2> {
        self.direction().map(Vec2::perp)
    }

    /// Intersection point of two segments, if they cross.
    ///
    /// Collinear overlaps return `None` (no unique point); endpoint contact
    /// counts as intersection.
    pub fn intersect(&self, other: &Segment) -> Option<Vec2> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom == 0.0 {
            return None; // parallel or collinear
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn circle_contains() {
        let c = Circle::new(Vec2::new(1.0, 1.0), 2.0);
        assert!(c.contains(Vec2::new(1.0, 1.0)));
        assert!(c.contains(Vec2::new(3.0, 1.0))); // boundary
        assert!(!c.contains(Vec2::new(3.1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn circle_rejects_negative_radius() {
        let _ = Circle::new(Vec2::ZERO, -1.0);
    }

    #[test]
    fn circle_signed_distance() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        assert!(approx_eq(c.signed_distance(Vec2::new(2.0, 0.0)), 1.0));
        assert!(approx_eq(c.signed_distance(Vec2::new(0.5, 0.0)), -0.5));
        assert!(approx_eq(c.signed_distance(Vec2::new(1.0, 0.0)), 0.0));
    }

    #[test]
    fn circle_intersects() {
        let a = Circle::new(Vec2::ZERO, 1.0);
        let b = Circle::new(Vec2::new(2.0, 0.0), 1.0); // touching
        let c = Circle::new(Vec2::new(2.1, 0.0), 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn circle_geometry() {
        let c = Circle::new(Vec2::new(1.0, 2.0), 3.0);
        assert!(approx_eq(c.area(), core::f64::consts::PI * 9.0));
        let bb = c.aabb();
        assert_eq!(bb.min, Vec2::new(-2.0, -1.0));
        assert_eq!(bb.max, Vec2::new(4.0, 5.0));
    }

    #[test]
    fn circle_boundary_samples_on_circle() {
        let c = Circle::new(Vec2::new(5.0, -3.0), 2.5);
        let pts = c.sample_boundary(16);
        assert_eq!(pts.len(), 16);
        for p in pts {
            assert!(approx_eq(c.center.distance(p), 2.5));
        }
    }

    #[test]
    fn segment_closest_point() {
        let s = Segment::new(Vec2::ZERO, Vec2::new(10.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(5.0, 3.0)), Vec2::new(5.0, 0.0));
        assert_eq!(s.closest_point(Vec2::new(-5.0, 3.0)), Vec2::ZERO); // clamped
        assert_eq!(s.closest_point(Vec2::new(15.0, -2.0)), Vec2::new(10.0, 0.0));
        assert!(approx_eq(s.distance_to(Vec2::new(5.0, 3.0)), 3.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0));
        assert_eq!(s.closest_point(Vec2::new(4.0, 5.0)), Vec2::new(1.0, 1.0));
        assert_eq!(s.direction(), None);
        assert_eq!(s.normal(), None);
        assert_eq!(s.length(), 0.0);
    }

    #[test]
    fn segment_intersection() {
        let a = Segment::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 2.0));
        let b = Segment::new(Vec2::new(0.0, 2.0), Vec2::new(2.0, 0.0));
        let p = a.intersect(&b).unwrap();
        assert!(approx_eq(p.x, 1.0) && approx_eq(p.y, 1.0));
        // Parallel: no intersection.
        let c = Segment::new(Vec2::new(0.0, 1.0), Vec2::new(2.0, 3.0));
        assert_eq!(a.intersect(&c), None);
        // Disjoint but crossing lines: no intersection within the segments.
        let d = Segment::new(Vec2::new(5.0, 0.0), Vec2::new(5.0, 1.0));
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn segment_direction_and_normal() {
        let s = Segment::new(Vec2::ZERO, Vec2::new(0.0, 5.0));
        assert_eq!(s.direction().unwrap(), Vec2::UNIT_Y);
        assert_eq!(s.normal().unwrap(), Vec2::new(-1.0, 0.0));
        assert_eq!(s.midpoint(), Vec2::new(0.0, 2.5));
    }
}
