//! # pas-geom — 2-D geometry kit for the PAS sensor-network simulator
//!
//! This crate provides the planar geometry substrate that every other layer of
//! the PAS reproduction builds on:
//!
//! * [`Vec2`] — a plain-old-data 2-D vector with the usual linear-algebra
//!   operations, used both for positions (metres) and velocities (m/s).
//! * [`angle`] — angle normalisation and the included-angle computation that
//!   the paper's arrival-time estimator (`|IX| cos θ / v`) depends on.
//! * [`Aabb`], [`Circle`], [`Segment`] — primitive shapes for deployment
//!   regions, transmission disks and front sampling.
//! * [`Polyline`] / [`Polygon`] — open and closed chains used to represent
//!   extracted stimulus boundaries (contours).
//! * [`hull::convex_hull`] — monotone-chain convex hull, used to build front
//!   envelopes from velocity samples (Fig. 1 of the paper).
//! * [`SpatialGrid`] — a uniform spatial hash over node positions so
//!   neighbour queries are O(1) amortised instead of O(n) scans.
//!
//! All quantities are `f64`; the crate has no I/O and no global state.
//!
//! ```
//! use pas_geom::{Vec2, SpatialGrid};
//!
//! let a = Vec2::new(3.0, 4.0);
//! assert_eq!(a.norm(), 5.0);
//!
//! let mut grid = SpatialGrid::new(10.0);
//! grid.insert(0, Vec2::new(1.0, 1.0));
//! grid.insert(1, Vec2::new(2.0, 2.0));
//! grid.insert(2, Vec2::new(50.0, 50.0));
//! let near: Vec<_> = grid.query_radius(Vec2::new(0.0, 0.0), 5.0).collect();
//! assert_eq!(near.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod angle;
pub mod float;
pub mod grid;
pub mod hull;
pub mod polyline;
pub mod shapes;
pub mod vec2;

pub use aabb::Aabb;
pub use grid::SpatialGrid;
pub use polyline::{Polygon, Polyline};
pub use shapes::{Circle, Segment};
pub use vec2::Vec2;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::aabb::Aabb;
    pub use crate::angle::{included_angle, normalize_angle};
    pub use crate::float::{approx_eq, approx_eq_eps};
    pub use crate::grid::SpatialGrid;
    pub use crate::hull::convex_hull;
    pub use crate::polyline::{Polygon, Polyline};
    pub use crate::shapes::{Circle, Segment};
    pub use crate::vec2::Vec2;
}
