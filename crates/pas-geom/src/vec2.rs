//! Plain-old-data 2-D vector.
//!
//! [`Vec2`] doubles as a point (position in metres) and a free vector
//! (velocity in m/s, displacement). The PAS estimator manipulates both, so a
//! single type keeps the arithmetic frictionless.

use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A 2-D vector / point with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component (metres or m/s depending on context).
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// Unit vector along +X.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector along +Y.
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Both components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec2 { x: v, y: v }
    }

    /// Unit vector at `angle` radians from +X (counter-clockwise).
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Polar construction: length `r` at `angle` radians.
    #[inline]
    pub fn from_polar(r: f64, angle: f64) -> Self {
        Vec2::from_angle(angle) * r
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the sqrt when comparing distances).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (other - self).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (other - self).norm_sq()
    }

    /// Unit vector in the same direction, or `None` for the zero vector.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Unit vector in the same direction; the zero vector maps to zero.
    ///
    /// Use [`Vec2::try_normalize`] when the zero case must be distinguished.
    #[inline]
    pub fn normalize_or_zero(self) -> Vec2 {
        self.try_normalize().unwrap_or(Vec2::ZERO)
    }

    /// Angle from +X in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotate counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotate(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Perpendicular vector (90° counter-clockwise rotation).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Component-wise linear interpolation toward `other`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Projection of `self` onto `onto` (zero if `onto` is zero).
    #[inline]
    pub fn project_onto(self, onto: Vec2) -> Vec2 {
        let d = onto.norm_sq();
        if d == 0.0 {
            Vec2::ZERO
        } else {
            onto * (self.dot(onto) / d)
        }
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.x.is_nan() || self.y.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl core::fmt::Display for Vec2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

/// Sum of an iterator of vectors (the zero vector for an empty iterator).
impl core::iter::Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;
    use core::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::new(1.0, 2.0);
        v -= Vec2::new(0.5, 0.5);
        v *= 2.0;
        v /= 4.0;
        assert_eq!(v, Vec2::new(0.75, 1.25));
    }

    #[test]
    fn dot_cross() {
        let a = Vec2::UNIT_X;
        let b = Vec2::UNIT_Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(v), 5.0);
        assert_eq!(Vec2::ZERO.distance_sq(v), 25.0);
    }

    #[test]
    fn normalize() {
        let v = Vec2::new(0.0, 10.0);
        assert_eq!(v.try_normalize().unwrap(), Vec2::UNIT_Y);
        assert_eq!(Vec2::ZERO.try_normalize(), None);
        assert_eq!(Vec2::ZERO.normalize_or_zero(), Vec2::ZERO);
    }

    #[test]
    fn angles_and_rotation() {
        assert!(approx_eq(Vec2::UNIT_Y.angle(), FRAC_PI_2));
        assert!(approx_eq(Vec2::new(-1.0, 0.0).angle(), PI));
        let r = Vec2::UNIT_X.rotate(FRAC_PI_2);
        assert!(approx_eq(r.x, 0.0) && approx_eq(r.y, 1.0));
        assert_eq!(Vec2::UNIT_X.perp(), Vec2::UNIT_Y);
    }

    #[test]
    fn from_polar_roundtrip() {
        let v = Vec2::from_polar(2.0, 0.7);
        assert!(approx_eq(v.norm(), 2.0));
        assert!(approx_eq(v.angle(), 0.7));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -5.0));
    }

    #[test]
    fn projection() {
        let v = Vec2::new(2.0, 2.0);
        let p = v.project_onto(Vec2::UNIT_X * 10.0);
        assert_eq!(p, Vec2::new(2.0, 0.0));
        assert_eq!(v.project_onto(Vec2::ZERO), Vec2::ZERO);
    }

    #[test]
    fn component_min_max_sum() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
        let s: Vec2 = [a, b].into_iter().sum();
        assert_eq!(s, Vec2::new(4.0, 7.0));
    }

    #[test]
    fn conversions_and_validity() {
        let v: Vec2 = (1.0, 2.0).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
        assert!(v.is_finite());
        assert!(!v.is_nan());
        assert!(Vec2::new(f64::NAN, 0.0).is_nan());
        assert!(!Vec2::new(f64::INFINITY, 0.0).is_finite());
    }
}
