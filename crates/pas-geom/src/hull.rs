//! Convex hull (Andrew's monotone chain).
//!
//! The paper's Fig. 1 constructs the next front boundary as the envelope of
//! velocity vectors anchored on the current boundary; the hull is the convex
//! core of that construction and is also used by analysis tooling to bound
//! covered regions.

use crate::polyline::Polygon;
use crate::vec2::Vec2;

/// Compute the convex hull of a point set.
///
/// Returns vertices in counter-clockwise order with no duplicates. Fewer than
/// three distinct non-collinear points yield a degenerate result: the distinct
/// points in sorted order (possibly 0, 1 or 2 of them).
pub fn convex_hull(points: &[Vec2]) -> Vec<Vec2> {
    let mut pts: Vec<Vec2> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("NaN in hull input")
            .then(a.y.partial_cmp(&b.y).expect("NaN in hull input"))
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    // cross(o->a, o->b) > 0 means b is CCW of a around o.
    let cross = |o: Vec2, a: Vec2, b: Vec2| (a - o).cross(b - o);

    let mut hull: Vec<Vec2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Convex hull as a [`Polygon`], or `None` if the hull is degenerate
/// (fewer than 3 vertices).
pub fn convex_hull_polygon(points: &[Vec2]) -> Option<Polygon> {
    let hull = convex_hull(points);
    if hull.len() >= 3 {
        Some(Polygon::new(hull))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn square_hull() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(0.5, 0.5), // interior point must be dropped
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&Vec2::new(0.5, 0.5)));
    }

    #[test]
    fn hull_is_ccw() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.5),
            Vec2::new(3.0, 2.0),
            Vec2::new(1.0, 3.0),
            Vec2::new(-1.0, 1.0),
            Vec2::new(1.0, 1.0),
        ];
        let poly = convex_hull_polygon(&pts).unwrap();
        assert!(poly.signed_area() > 0.0, "hull must wind CCW");
    }

    #[test]
    fn collinear_points_degenerate() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(3.0, 3.0),
        ];
        let h = convex_hull(&pts);
        // Strictly convex hull of collinear points keeps only the extremes.
        assert_eq!(h.len(), 2);
        assert!(convex_hull_polygon(&pts).is_none());
    }

    #[test]
    fn small_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Vec2::ZERO]), vec![Vec2::ZERO]);
        let two = vec![Vec2::ZERO, Vec2::UNIT_X];
        assert_eq!(convex_hull(&two).len(), 2);
    }

    #[test]
    fn duplicates_removed() {
        let pts = vec![Vec2::ZERO, Vec2::ZERO, Vec2::UNIT_X, Vec2::UNIT_X];
        assert_eq!(convex_hull(&pts).len(), 2);
    }

    #[test]
    fn hull_contains_all_points() {
        // Deterministic pseudo-random scatter.
        let mut pts = Vec::new();
        let mut s: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64) / (u32::MAX as f64) * 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64) / (u32::MAX as f64) * 10.0;
            pts.push(Vec2::new(x, y));
        }
        let poly = convex_hull_polygon(&pts).unwrap();
        for &p in &pts {
            // Interior or within epsilon of the boundary.
            assert!(
                poly.contains(p) || poly.distance_to_boundary(p) < 1e-9,
                "hull must contain {p}"
            );
        }
    }

    #[test]
    fn hull_area_of_regular_polygon_preserved() {
        // The hull of a convex polygon is itself.
        let poly = Polygon::regular(Vec2::new(1.0, 1.0), 3.0, 32);
        let hull = convex_hull_polygon(&poly.points).unwrap();
        assert_eq!(hull.len(), 32);
        assert!(approx_eq(hull.area(), poly.area()));
    }
}
