//! Uniform spatial hash grid for radius queries.
//!
//! Neighbour discovery ("which sensors are within transmission range r of
//! me?") is the hottest geometric query in the simulator: it runs for every
//! REQUEST broadcast. The grid buckets points into cells of side
//! `cell_size`; a radius query visits only the O(⌈r/cell⌉²) nearby cells
//! instead of scanning all n points.
//!
//! Choosing `cell_size` equal to the typical query radius keeps the visited
//! cell count at 9 and the candidate set small — the standard tuning for
//! unit-disk neighbourhood queries.

use crate::vec2::Vec2;
use std::collections::HashMap;

/// Key of a grid cell (integer cell coordinates).
type CellKey = (i64, i64);

/// A uniform spatial hash over `(id, position)` pairs.
///
/// `Id` is any copyable identifier (node ids in practice). Positions are
/// unconstrained — the grid is unbounded and sparse.
#[derive(Debug, Clone)]
pub struct SpatialGrid<Id = usize> {
    cell_size: f64,
    cells: HashMap<CellKey, Vec<(Id, Vec2)>>,
    len: usize,
}

impl<Id: Copy> SpatialGrid<Id> {
    /// Create a grid with the given cell side length.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite"
        );
        SpatialGrid {
            cell_size,
            cells: HashMap::new(),
            len: 0,
        }
    }

    /// Build a grid from an iterator of `(id, position)` pairs.
    pub fn from_points<I>(cell_size: f64, points: I) -> Self
    where
        I: IntoIterator<Item = (Id, Vec2)>,
    {
        let mut g = SpatialGrid::new(cell_size);
        for (id, p) in points {
            g.insert(id, p);
        }
        g
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    #[inline]
    fn key_of(&self, p: Vec2) -> CellKey {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Insert a point. Duplicate ids are allowed (the grid is a multiset);
    /// static deployments never exercise that, but it keeps insertion O(1).
    pub fn insert(&mut self, id: Id, p: Vec2) {
        assert!(p.is_finite(), "SpatialGrid positions must be finite");
        self.cells.entry(self.key_of(p)).or_default().push((id, p));
        self.len += 1;
    }

    /// Iterator over all `(id, position)` pairs within `radius` of `center`
    /// (inclusive boundary). Order is unspecified but deterministic for a
    /// fixed insertion sequence.
    pub fn query_radius(&self, center: Vec2, radius: f64) -> impl Iterator<Item = (Id, Vec2)> + '_ {
        assert!(radius >= 0.0, "query radius must be non-negative");
        let r_sq = radius * radius;
        let min_key = self.key_of(center - Vec2::splat(radius));
        let max_key = self.key_of(center + Vec2::splat(radius));
        (min_key.0..=max_key.0)
            .flat_map(move |cx| (min_key.1..=max_key.1).map(move |cy| (cx, cy)))
            .filter_map(move |key| self.cells.get(&key))
            .flatten()
            .filter(move |(_, p)| center.distance_sq(*p) <= r_sq)
            .copied()
    }

    /// Collect ids within `radius` of `center` into a vector.
    pub fn ids_within(&self, center: Vec2, radius: f64) -> Vec<Id> {
        self.query_radius(center, radius)
            .map(|(id, _)| id)
            .collect()
    }

    /// Iterator over every stored `(id, position)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (Id, Vec2)> + '_ {
        self.cells.values().flatten().copied()
    }

    /// Nearest stored point to `center`, or `None` if the grid is empty.
    ///
    /// Searches rings of cells outward; O(1) for dense data, O(cells) worst
    /// case for a near-empty grid.
    pub fn nearest(&self, center: Vec2) -> Option<(Id, Vec2)> {
        if self.is_empty() {
            return None;
        }
        let mut best: Option<(Id, Vec2, f64)> = None;
        let center_key = self.key_of(center);
        let mut ring: i64 = 0;
        loop {
            let mut found_any = false;
            for cx in (center_key.0 - ring)..=(center_key.0 + ring) {
                for cy in (center_key.1 - ring)..=(center_key.1 + ring) {
                    // Only the new ring boundary, not the already-seen core.
                    if ring > 0
                        && (cx - center_key.0).abs() < ring
                        && (cy - center_key.1).abs() < ring
                    {
                        continue;
                    }
                    if let Some(cell) = self.cells.get(&(cx, cy)) {
                        found_any = true;
                        for &(id, p) in cell {
                            let d = center.distance_sq(p);
                            if best.is_none_or(|(_, _, bd)| d < bd) {
                                best = Some((id, p, d));
                            }
                        }
                    }
                }
            }
            // A hit in ring k can still be beaten by ring k+1 (corner vs edge
            // distances), so expand one extra ring after the first hit.
            if let Some((id, p, d)) = best {
                let safe_radius = (ring as f64) * self.cell_size;
                if found_any && d.sqrt() <= safe_radius || ring > 1_000_000 {
                    return Some((id, p));
                }
                if !found_any && d.sqrt() <= safe_radius {
                    return Some((id, p));
                }
            }
            ring += 1;
            if ring > 1_000_000 {
                // Pathological sparse grid; fall back to the best seen.
                return best.map(|(id, p, _)| (id, p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_grid() -> SpatialGrid<usize> {
        SpatialGrid::from_points(
            5.0,
            vec![
                (0, Vec2::new(0.0, 0.0)),
                (1, Vec2::new(3.0, 4.0)),
                (2, Vec2::new(10.0, 0.0)),
                (3, Vec2::new(-7.0, -7.0)),
                (4, Vec2::new(100.0, 100.0)),
            ],
        )
    }

    #[test]
    fn basic_radius_query() {
        let g = demo_grid();
        let mut ids = g.ids_within(Vec2::ZERO, 5.0);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]); // (3,4) is at distance exactly 5 — inclusive
    }

    #[test]
    fn boundary_inclusive() {
        let g = demo_grid();
        let ids = g.ids_within(Vec2::ZERO, 10.0);
        assert!(ids.contains(&2), "distance exactly 10 must be included");
    }

    #[test]
    fn empty_and_zero_radius() {
        let g: SpatialGrid<usize> = SpatialGrid::new(1.0);
        assert!(g.is_empty());
        assert_eq!(g.ids_within(Vec2::ZERO, 100.0), Vec::<usize>::new());

        let g = demo_grid();
        let ids = g.ids_within(Vec2::new(10.0, 0.0), 0.0);
        assert_eq!(ids, vec![2]); // zero radius still matches exact hits
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_cell_size() {
        let _: SpatialGrid<usize> = SpatialGrid::new(0.0);
    }

    #[test]
    fn negative_coordinates() {
        let g = demo_grid();
        let ids = g.ids_within(Vec2::new(-7.0, -7.0), 1.0);
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn matches_naive_scan() {
        // Deterministic scatter, compare grid query vs brute force.
        let mut pts = Vec::new();
        let mut s: u64 = 42;
        for i in 0..500usize {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64) / (u32::MAX as f64) * 100.0 - 50.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64) / (u32::MAX as f64) * 100.0 - 50.0;
            pts.push((i, Vec2::new(x, y)));
        }
        let g = SpatialGrid::from_points(7.0, pts.iter().copied());
        for &(_, c) in pts.iter().step_by(37) {
            for radius in [0.5, 5.0, 12.0, 60.0] {
                let mut got = g.ids_within(c, radius);
                got.sort_unstable();
                let mut want: Vec<usize> = pts
                    .iter()
                    .filter(|(_, p)| c.distance(*p) <= radius)
                    .map(|(i, _)| *i)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "center {c} radius {radius}");
            }
        }
    }

    #[test]
    fn iter_sees_everything() {
        let g = demo_grid();
        assert_eq!(g.len(), 5);
        assert_eq!(g.iter().count(), 5);
    }

    #[test]
    fn nearest_point() {
        let g = demo_grid();
        let (id, _) = g.nearest(Vec2::new(9.0, 1.0)).unwrap();
        assert_eq!(id, 2);
        let (id, _) = g.nearest(Vec2::new(99.0, 99.0)).unwrap();
        assert_eq!(id, 4);
        let empty: SpatialGrid<usize> = SpatialGrid::new(1.0);
        assert!(empty.nearest(Vec2::ZERO).is_none());
    }

    #[test]
    fn nearest_matches_naive() {
        let mut pts = Vec::new();
        let mut s: u64 = 7;
        for i in 0..200usize {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64) / (u32::MAX as f64) * 40.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64) / (u32::MAX as f64) * 40.0;
            pts.push((i, Vec2::new(x, y)));
        }
        let g = SpatialGrid::from_points(3.0, pts.iter().copied());
        for probe in [
            Vec2::new(0.0, 0.0),
            Vec2::new(20.0, 20.0),
            Vec2::new(40.0, 0.0),
            Vec2::new(-10.0, 55.0),
        ] {
            let (got, gp) = g.nearest(probe).unwrap();
            let (want, wp) = pts
                .iter()
                .min_by(|a, b| {
                    probe
                        .distance_sq(a.1)
                        .partial_cmp(&probe.distance_sq(b.1))
                        .unwrap()
                })
                .copied()
                .unwrap();
            // Ties can pick either point; compare distances not ids.
            assert!(
                (probe.distance(gp) - probe.distance(wp)).abs() < 1e-12,
                "probe {probe}: got {got} want {want}"
            );
        }
    }
}
