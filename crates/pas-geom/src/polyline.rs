//! Open polylines and closed polygons.
//!
//! Extracted stimulus contours (marching squares in `pas-diffusion`) are
//! polylines; closed fronts are polygons supporting point-in-polygon and
//! distance-to-boundary queries — the geometric backbone of "how far is the
//! stimulus from this sensor".

use crate::aabb::Aabb;
use crate::shapes::Segment;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An open chain of points.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polyline {
    /// Vertices in order.
    pub points: Vec<Vec2>,
}

impl Polyline {
    /// Construct from vertices.
    pub fn new(points: Vec<Vec2>) -> Self {
        Polyline { points }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Iterator over the segments of the chain.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Distance from `p` to the nearest point on the chain.
    ///
    /// Returns `f64::INFINITY` for an empty chain; a single-vertex chain is a
    /// point.
    pub fn distance_to(&self, p: Vec2) -> f64 {
        match self.points.len() {
            0 => f64::INFINITY,
            1 => self.points[0].distance(p),
            _ => self
                .segments()
                .map(|s| s.distance_to(p))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Resample to `n >= 2` points evenly spaced by arc length.
    ///
    /// Returns a clone if the chain has fewer than 2 points or zero length.
    pub fn resample(&self, n: usize) -> Polyline {
        if self.points.len() < 2 || n < 2 {
            return self.clone();
        }
        let total = self.length();
        if total <= 0.0 {
            return self.clone();
        }
        let step = total / ((n - 1) as f64);
        let mut out = Vec::with_capacity(n);
        out.push(self.points[0]);
        let mut target = step;
        let mut travelled = 0.0;
        for w in self.points.windows(2) {
            let seg_len = w[0].distance(w[1]);
            // Emit every resample point that falls inside this segment.
            while target <= travelled + seg_len + 1e-12 && out.len() < n - 1 {
                let t = if seg_len > 0.0 {
                    (target - travelled) / seg_len
                } else {
                    0.0
                };
                out.push(w[0].lerp(w[1], t));
                target += step;
            }
            travelled += seg_len;
        }
        out.push(*self.points.last().expect("len >= 2"));
        Polyline { points: out }
    }

    /// Bounding box, or `None` if empty.
    pub fn aabb(&self) -> Option<Aabb> {
        Aabb::from_points(&self.points)
    }
}

/// A closed polygon (the closing edge `last -> first` is implicit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// Vertices in order (no repeated closing vertex).
    pub points: Vec<Vec2>,
}

impl Polygon {
    /// Construct from vertices.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied.
    pub fn new(points: Vec<Vec2>) -> Self {
        assert!(points.len() >= 3, "Polygon needs at least 3 vertices");
        Polygon { points }
    }

    /// A regular `n`-gon approximating a circle.
    pub fn regular(center: Vec2, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "regular polygon needs n >= 3");
        let points = (0..n)
            .map(|i| {
                let a = core::f64::consts::TAU * (i as f64) / (n as f64);
                center + Vec2::from_polar(radius, a)
            })
            .collect();
        Polygon { points }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if there are no vertices (cannot occur via constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over the edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| Segment::new(self.points[i], self.points[(i + 1) % n]))
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            acc += a.cross(b);
        }
        acc * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Vertex centroid (arithmetic mean of vertices).
    pub fn vertex_centroid(&self) -> Vec2 {
        let n = self.points.len() as f64;
        self.points.iter().copied().sum::<Vec2>() / n
    }

    /// Point-in-polygon test (even-odd rule). Boundary points may go either
    /// way due to floating point; callers needing exactness should use
    /// [`Polygon::distance_to_boundary`].
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.points.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let pi = self.points[i];
            let pj = self.points[j];
            // Ray cast toward +X: count crossings of edges straddling p.y.
            if (pi.y > p.y) != (pj.y > p.y) {
                let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the polygon boundary (0 on the boundary,
    /// positive elsewhere — use with [`Polygon::contains`] for a signed
    /// distance).
    pub fn distance_to_boundary(&self, p: Vec2) -> f64 {
        self.edges()
            .map(|e| e.distance_to(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Bounding box.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(&self.points).expect("polygon has >= 3 vertices")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ])
    }

    #[test]
    fn polyline_length_and_segments() {
        let pl = Polyline::new(vec![Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(3.0, 4.0)]);
        assert_eq!(pl.len(), 3);
        assert!(!pl.is_empty());
        assert!(approx_eq(pl.length(), 7.0));
        assert_eq!(pl.segments().count(), 2);
    }

    #[test]
    fn polyline_distance() {
        let pl = Polyline::new(vec![Vec2::ZERO, Vec2::new(10.0, 0.0)]);
        assert!(approx_eq(pl.distance_to(Vec2::new(5.0, 2.0)), 2.0));
        assert!(approx_eq(pl.distance_to(Vec2::new(-3.0, 4.0)), 5.0));
        assert_eq!(Polyline::default().distance_to(Vec2::ZERO), f64::INFINITY);
        let point = Polyline::new(vec![Vec2::new(1.0, 1.0)]);
        assert!(approx_eq(point.distance_to(Vec2::new(1.0, 3.0)), 2.0));
    }

    #[test]
    fn polyline_resample_even_spacing() {
        let pl = Polyline::new(vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
        ]);
        let rs = pl.resample(5);
        assert_eq!(rs.len(), 5);
        assert_eq!(rs.points[0], Vec2::ZERO);
        assert_eq!(*rs.points.last().unwrap(), Vec2::new(10.0, 10.0));
        // Even spacing: each gap is total length / 4 = 5.
        for w in rs.points.windows(2) {
            assert!(approx_eq(w[0].distance(w[1]), 5.0));
        }
    }

    #[test]
    fn polyline_resample_degenerate() {
        let single = Polyline::new(vec![Vec2::ZERO]);
        assert_eq!(single.resample(10), single);
        let pl = Polyline::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        assert_eq!(pl.resample(1), pl); // n < 2 is a no-op
    }

    #[test]
    fn polygon_area_and_perimeter() {
        let sq = unit_square();
        assert!(approx_eq(sq.area(), 1.0));
        assert!(approx_eq(sq.signed_area(), 1.0)); // CCW
        assert!(approx_eq(sq.perimeter(), 4.0));
        let mut rev = sq.points.clone();
        rev.reverse();
        assert!(approx_eq(Polygon::new(rev).signed_area(), -1.0)); // CW
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn polygon_rejects_degenerate() {
        let _ = Polygon::new(vec![Vec2::ZERO, Vec2::UNIT_X]);
    }

    #[test]
    fn polygon_contains() {
        let sq = unit_square();
        assert!(sq.contains(Vec2::new(0.5, 0.5)));
        assert!(!sq.contains(Vec2::new(1.5, 0.5)));
        assert!(!sq.contains(Vec2::new(0.5, -0.5)));
        assert!(!sq.contains(Vec2::new(-0.1, 0.0)));
    }

    #[test]
    fn polygon_contains_concave() {
        // L-shape: the notch at (1.5, 1.5) must be outside.
        let l = Polygon::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(1.0, 2.0),
            Vec2::new(0.0, 2.0),
        ]);
        assert!(l.contains(Vec2::new(0.5, 0.5)));
        assert!(l.contains(Vec2::new(1.5, 0.5)));
        assert!(l.contains(Vec2::new(0.5, 1.5)));
        assert!(!l.contains(Vec2::new(1.5, 1.5)));
        assert!(approx_eq(l.area(), 3.0));
    }

    #[test]
    fn polygon_distance_to_boundary() {
        let sq = unit_square();
        assert!(approx_eq(sq.distance_to_boundary(Vec2::new(0.5, 0.5)), 0.5));
        assert!(approx_eq(sq.distance_to_boundary(Vec2::new(2.0, 0.5)), 1.0));
        assert!(approx_eq(sq.distance_to_boundary(Vec2::new(0.0, 0.0)), 0.0));
    }

    #[test]
    fn regular_polygon_approximates_circle() {
        let c = Vec2::new(3.0, 3.0);
        let poly = Polygon::regular(c, 2.0, 64);
        assert_eq!(poly.len(), 64);
        // Area converges to π r² from below.
        let circle_area = core::f64::consts::PI * 4.0;
        assert!(poly.area() < circle_area);
        assert!(poly.area() > 0.98 * circle_area);
        assert!(poly.contains(c));
        assert!(approx_eq(poly.vertex_centroid().distance(c), 0.0));
    }

    #[test]
    fn polygon_aabb() {
        let sq = unit_square();
        let bb = sq.aabb();
        assert_eq!(bb.min, Vec2::ZERO);
        assert_eq!(bb.max, Vec2::new(1.0, 1.0));
    }
}
