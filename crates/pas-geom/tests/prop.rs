//! Property-based tests for the geometry kit.

use pas_geom::angle::{included_cos, normalize_angle};
use pas_geom::float::approx_eq_eps;
use pas_geom::hull::convex_hull_polygon;
use pas_geom::{Polygon, Polyline, SpatialGrid, Vec2};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e3..1.0e3
}

fn vec2() -> impl Strategy<Value = Vec2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    // --- Vec2 algebra -----------------------------------------------------

    #[test]
    fn add_commutes(a in vec2(), b in vec2()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associates_up_to_eps(a in vec2(), b in vec2(), c in vec2()) {
        let l = (a + b) + c;
        let r = a + (b + c);
        prop_assert!(approx_eq_eps(l.x, r.x, 1e-9));
        prop_assert!(approx_eq_eps(l.y, r.y, 1e-9));
    }

    #[test]
    fn scalar_distributes(a in vec2(), b in vec2(), k in -100.0..100.0f64) {
        let l = (a + b) * k;
        let r = a * k + b * k;
        prop_assert!(approx_eq_eps(l.x, r.x, 1e-6));
        prop_assert!(approx_eq_eps(l.y, r.y, 1e-6));
    }

    #[test]
    fn norm_triangle_inequality(a in vec2(), b in vec2()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn norm_scales(a in vec2(), k in -100.0..100.0f64) {
        prop_assert!(approx_eq_eps((a * k).norm(), a.norm() * k.abs(), 1e-6));
    }

    #[test]
    fn normalized_has_unit_norm(a in vec2()) {
        if let Some(u) = a.try_normalize() {
            prop_assert!(approx_eq_eps(u.norm(), 1.0, 1e-9));
        } else {
            prop_assert_eq!(a, Vec2::ZERO);
        }
    }

    #[test]
    fn rotation_preserves_norm(a in vec2(), angle in -10.0..10.0f64) {
        prop_assert!(approx_eq_eps(a.rotate(angle).norm(), a.norm(), 1e-6));
    }

    #[test]
    fn perp_is_orthogonal(a in vec2()) {
        prop_assert!(approx_eq_eps(a.dot(a.perp()), 0.0, 1e-9));
    }

    // --- angles -------------------------------------------------------------

    #[test]
    fn normalize_angle_in_range(a in -1.0e4..1.0e4f64) {
        let n = normalize_angle(a);
        prop_assert!(n > -core::f64::consts::PI - 1e-9);
        prop_assert!(n <= core::f64::consts::PI + 1e-9);
        // Same direction: cos and sin agree.
        prop_assert!(approx_eq_eps(n.cos(), a.cos(), 1e-6));
        prop_assert!(approx_eq_eps(n.sin(), a.sin(), 1e-6));
    }

    #[test]
    fn included_cos_bounded_and_symmetric(a in vec2(), b in vec2()) {
        let c = included_cos(a, b);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert_eq!(c.to_bits(), included_cos(b, a).to_bits());
    }

    // --- hull ----------------------------------------------------------------

    #[test]
    fn hull_contains_every_input(pts in prop::collection::vec(vec2(), 3..40)) {
        if let Some(hull) = convex_hull_polygon(&pts) {
            for &p in &pts {
                prop_assert!(
                    hull.contains(p) || hull.distance_to_boundary(p) < 1e-6,
                    "hull must contain {}", p
                );
            }
            // Hull is convex: every vertex turn is CCW.
            prop_assert!(hull.signed_area() > 0.0);
        }
    }

    // --- polygon / polyline ---------------------------------------------------

    #[test]
    fn regular_polygon_area_rotation_invariant(
        cx in -100.0..100.0f64,
        cy in -100.0..100.0f64,
        r in 0.1..50.0f64,
        n in 3usize..32,
    ) {
        let poly = Polygon::regular(Vec2::new(cx, cy), r, n);
        // Translate: area unchanged.
        let moved = Polygon::new(
            poly.points.iter().map(|&p| p + Vec2::new(7.0, -3.0)).collect(),
        );
        prop_assert!(approx_eq_eps(poly.area(), moved.area(), 1e-6));
        // Perimeter below circle circumference, area below circle area.
        prop_assert!(poly.perimeter() <= core::f64::consts::TAU * r + 1e-9);
        prop_assert!(poly.area() <= core::f64::consts::PI * r * r + 1e-9);
    }

    #[test]
    fn resample_preserves_endpoints_and_length(
        pts in prop::collection::vec(vec2(), 2..12),
        n in 2usize..50,
    ) {
        let pl = Polyline::new(pts);
        let rs = pl.resample(n);
        if pl.length() > 1e-9 {
            prop_assert_eq!(rs.len(), n);
            prop_assert_eq!(rs.points[0], pl.points[0]);
            prop_assert_eq!(*rs.points.last().unwrap(), *pl.points.last().unwrap());
            // Resampling a chain can only shorten it (chords of the path).
            prop_assert!(rs.length() <= pl.length() + 1e-6);
        }
    }

    // --- spatial grid ----------------------------------------------------------

    #[test]
    fn grid_query_matches_naive(
        pts in prop::collection::vec(vec2(), 0..60),
        center in vec2(),
        radius in 0.0..200.0f64,
        cell in 0.5..50.0f64,
    ) {
        let grid = SpatialGrid::from_points(cell, pts.iter().copied().enumerate());
        let mut got = grid.ids_within(center, radius);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| center.distance(**p) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
