//! Integration tests: every behavioural claim the paper makes, asserted
//! end-to-end on the real simulator (not on mocks). These are the
//! regression gates for the reproduction — if one fails, a figure has
//! stopped reproducing.

use pas::prelude::*;
use pas_core::AdaptiveParams;

const SEEDS: u64 = 8;

fn field() -> RadialFront {
    RadialFront::constant(Vec2::new(0.0, 0.0), 0.5)
}

fn mean_over_seeds(policy: Policy) -> (f64, f64) {
    let f = field();
    let mut delay = 0.0;
    let mut energy = 0.0;
    for seed in 0..SEEDS {
        let s = Scenario::paper_default(1000 + seed);
        let r = run(&s, &f, &RunConfig::new(policy));
        delay += r.delay.mean_delay_s;
        energy += r.mean_energy_j();
    }
    (delay / SEEDS as f64, energy / SEEDS as f64)
}

/// §4.2: "NS sensors have zero delay since they always keep active."
#[test]
fn claim_ns_zero_delay() {
    let (delay, _) = mean_over_seeds(Policy::Ns);
    assert!(delay < 1e-9, "NS delay must be exactly zero, got {delay}");
}

/// Fig. 4: PAS delay < SAS delay at the operating point.
#[test]
fn claim_pas_beats_sas_delay() {
    let pas = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 15.0,
        ..AdaptiveParams::default()
    });
    let sas = Policy::Sas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 2.0,
        ..AdaptiveParams::default()
    });
    let (pas_delay, _) = mean_over_seeds(pas);
    let (sas_delay, _) = mean_over_seeds(sas);
    assert!(
        pas_delay < 0.85 * sas_delay,
        "PAS {pas_delay:.3} s must clearly undercut SAS {sas_delay:.3} s"
    );
}

/// Fig. 6: NS consumes the most; PAS pays only a small premium over SAS
/// ("the difference is trivial").
#[test]
fn claim_energy_ordering() {
    let pas = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 15.0,
        ..AdaptiveParams::default()
    });
    let sas = Policy::Sas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 2.0,
        ..AdaptiveParams::default()
    });
    let (_, ns_e) = mean_over_seeds(Policy::Ns);
    let (_, sas_e) = mean_over_seeds(sas);
    let (_, pas_e) = mean_over_seeds(pas);
    assert!(
        ns_e > pas_e && ns_e > sas_e,
        "NS must be the most expensive"
    );
    assert!(
        pas_e >= sas_e,
        "PAS pays for its alert ring: {pas_e} vs {sas_e}"
    );
    assert!(
        pas_e < 1.35 * sas_e,
        "but the premium is small: PAS {pas_e:.3} J vs SAS {sas_e:.3} J"
    );
    assert!(
        pas_e < 0.65 * ns_e,
        "and both adaptive schemes save big over NS"
    );
}

/// Fig. 4 shape: SAS/PAS delay is monotone non-decreasing in the maximum
/// sleep interval (up to averaging noise), then saturates.
#[test]
fn claim_delay_grows_with_max_sleep() {
    for make in [
        |ms: f64| {
            Policy::Pas(AdaptiveParams {
                max_sleep_s: ms,
                alert_threshold_s: 15.0,
                ..AdaptiveParams::default()
            })
        },
        |ms: f64| {
            Policy::Sas(AdaptiveParams {
                max_sleep_s: ms,
                alert_threshold_s: 2.0,
                ..AdaptiveParams::default()
            })
        },
    ] {
        let (d_small, _) = mean_over_seeds(make(2.0));
        let (d_mid, _) = mean_over_seeds(make(8.0));
        let (d_large, _) = mean_over_seeds(make(16.0));
        assert!(
            d_small < d_mid && d_mid < d_large,
            "delay must grow with max sleep: {d_small:.2} {d_mid:.2} {d_large:.2}"
        );
    }
}

/// Fig. 5: PAS delay falls as the alert threshold rises (10 s → 30 s).
#[test]
fn claim_alert_threshold_cuts_delay() {
    let at = |alert: f64| {
        Policy::Pas(AdaptiveParams {
            max_sleep_s: 12.0,
            alert_threshold_s: alert,
            ..AdaptiveParams::default()
        })
    };
    let (d10, _) = mean_over_seeds(at(10.0));
    let (d30, _) = mean_over_seeds(at(30.0));
    assert!(
        d30 < d10,
        "Fig 5: delay at alert=30 ({d30:.3}) must undercut alert=10 ({d10:.3})"
    );
}

/// Fig. 7: PAS energy rises as the alert threshold rises.
#[test]
fn claim_alert_threshold_costs_energy() {
    let at = |alert: f64| {
        Policy::Pas(AdaptiveParams {
            max_sleep_s: 12.0,
            alert_threshold_s: alert,
            ..AdaptiveParams::default()
        })
    };
    let (_, e10) = mean_over_seeds(at(10.0));
    let (_, e30) = mean_over_seeds(at(30.0));
    assert!(
        e30 > e10,
        "Fig 7: energy at alert=30 ({e30:.3}) must exceed alert=10 ({e10:.3})"
    );
}

/// §3.4: "By greatly reducing the threshold value of alert time, PAS can
/// degenerate into SAS" — with a tiny alert ring, PAS's metrics approach
/// SAS's.
#[test]
fn claim_pas_degenerates_to_sas() {
    let degenerate = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 2.0, // SAS's effective horizon
        ..AdaptiveParams::default()
    });
    let sas = Policy::Sas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 2.0,
        ..AdaptiveParams::default()
    });
    let full = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 30.0,
        ..AdaptiveParams::default()
    });
    let (d_degen, e_degen) = mean_over_seeds(degenerate);
    let (d_sas, e_sas) = mean_over_seeds(sas);
    let (d_full, _) = mean_over_seeds(full);
    // Shrinking the alert ring moves PAS from its full-threshold behaviour
    // toward SAS's: delay degrades past full PAS and lands in SAS's
    // neighbourhood. (It cannot reach SAS exactly — our SAS reconstruction
    // also drops the directional cos θ term, which degenerate PAS keeps.)
    assert!(
        d_degen > d_full,
        "shrinking the ring must cost delay: degenerate {d_degen:.2} vs full {d_full:.2}"
    );
    assert!(
        d_degen <= d_sas * 1.05,
        "degenerate PAS {d_degen:.2} must land at or below SAS {d_sas:.2} (+5%)"
    );
    assert!(
        d_degen >= d_full + 0.3 * (d_sas - d_full),
        "and must have closed most of the gap toward SAS: degen {d_degen:.2}, \
         full {d_full:.2}, sas {d_sas:.2}"
    );
    assert!(
        (e_degen - e_sas).abs() / e_sas < 0.25,
        "degenerate PAS energy {e_degen:.3} must be within 25% of SAS {e_sas:.3}"
    );
}

/// §3.1's "ideal case" (Oracle) bounds both metrics from below.
#[test]
fn claim_oracle_is_the_bound() {
    let pas = Policy::Pas(AdaptiveParams::default());
    let (o_delay, o_energy) = mean_over_seeds(Policy::Oracle);
    let (p_delay, p_energy) = mean_over_seeds(pas);
    assert!(o_delay < 1e-9, "oracle delay is zero");
    assert!(p_delay >= o_delay);
    // Oracle energy undercuts every realisable policy except for the
    // detection-lag artefact (late detectors are awake for less of the
    // run); allow a small tolerance.
    assert!(
        o_energy < p_energy * 1.10,
        "oracle {o_energy:.3} J should not exceed PAS {p_energy:.3} J by >10%"
    );
}
