//! Integration tests across crate boundaries: determinism end-to-end,
//! alternative stimulus models driving the runner, energy conservation,
//! and the future-work extensions (failures, lossy channels) composed
//! together.

use pas::prelude::*;
use pas_platform::telos_profile;

fn radial() -> RadialFront {
    RadialFront::constant(Vec2::new(0.0, 0.0), 0.5)
}

/// The whole pipeline — deployment, topology, stimulus, protocol, metrics —
/// is bit-deterministic in the seed.
#[test]
fn end_to_end_determinism() {
    let f = radial();
    for policy in [
        Policy::Ns,
        Policy::sas_default(),
        Policy::pas_default(),
        Policy::Oracle,
    ] {
        let s = Scenario::paper_default(77);
        let cfg = RunConfig::new(policy);
        let a = run(&s, &f, &cfg);
        let b = run(&s, &f, &cfg);
        assert_eq!(
            a.delay.mean_delay_s.to_bits(),
            b.delay.mean_delay_s.to_bits()
        );
        assert_eq!(a.mean_energy_j().to_bits(), b.mean_energy_j().to_bits());
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.requests_sent, b.requests_sent);
        assert_eq!(a.responses_sent, b.responses_sent);
    }
}

/// Different seeds produce different topologies and different outcomes
/// (the sweep actually samples randomness).
#[test]
fn seeds_vary_outcomes() {
    let f = radial();
    let r1 = run(
        &Scenario::paper_default(1),
        &f,
        &RunConfig::new(Policy::pas_default()),
    );
    let r2 = run(
        &Scenario::paper_default(2),
        &f,
        &RunConfig::new(Policy::pas_default()),
    );
    assert_ne!(
        r1.delay.mean_delay_s, r2.delay.mean_delay_s,
        "distinct seeds should (generically) differ"
    );
}

/// An eikonal (FMM) field can drive the full simulation, and slow terrain
/// shows up as later detections.
#[test]
fn eikonal_field_drives_runner() {
    let region = Aabb::from_size(40.0, 40.0);
    let grid = SpeedGrid::from_fn(region, 41, 41, |p| if p.x < 20.0 { 1.0 } else { 0.25 });
    let field = EikonalField::solve(grid, &[Vec2::new(1.0, 20.0)], SimTime::ZERO);
    let s = Scenario::paper_default(5);
    let r = run(&s, &field, &RunConfig::new(Policy::pas_default()));
    assert!(r.delay.reached > 0, "front must reach nodes");
    assert_eq!(
        r.delay.detected + r.delay.missed,
        r.delay.reached,
        "every reached node is either detected or missed"
    );
    assert!(r.duration_s > 40.0, "slow half stretches the event");
}

/// A multi-source incident (union field) reaches nodes earlier than either
/// of its members alone.
#[test]
fn multi_source_arrives_earlier() {
    let a = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
    let b = RadialFront::constant(Vec2::new(40.0, 40.0), 0.5);
    let both = MultiSourceField::new(vec![
        Box::new(RadialFront::constant(Vec2::new(0.0, 0.0), 0.5)),
        Box::new(RadialFront::constant(Vec2::new(40.0, 40.0), 0.5)),
    ]);
    let s = Scenario::paper_default(11);
    let cfg = RunConfig::new(Policy::Ns);
    let ra = run(&s, &a, &cfg);
    let rb = run(&s, &b, &cfg);
    let rboth = run(&s, &both, &cfg);
    // Union event ends no later than the earlier-ending single event.
    assert!(rboth.duration_s <= ra.duration_s.min(rb.duration_s) + 1e-9);
    assert_eq!(rboth.delay.reached, 30);
}

/// Energy bookkeeping: per-node totals equal the component sums, and an
/// NS node's energy equals power × duration exactly.
#[test]
fn energy_accounting_is_conservative() {
    let f = radial();
    let s = Scenario::paper_default(3);
    let r = run(&s, &f, &RunConfig::new(Policy::pas_default()));
    for e in &r.per_node_energy {
        let component_sum =
            e.mcu_active_j + e.sleep_j + e.radio_rx_j + e.radio_tx_j + e.transition_j;
        assert!((e.total_j() - component_sum).abs() < 1e-12);
        assert!(e.total_j() > 0.0, "every node consumes something");
    }
    let ns = run(&s, &f, &RunConfig::new(Policy::Ns));
    let p = telos_profile();
    for e in &ns.per_node_energy {
        assert!((e.total_j() - p.total_active_w() * ns.duration_s).abs() < 1e-9);
    }
}

/// Future-work extensions compose: failures + lossy channel in one run,
/// without losing metric invariants.
#[test]
fn failures_and_loss_compose() {
    let f = radial();
    let s = Scenario::paper_default(13);
    let mut rng = pas_sim::Rng::substream(13, 0xFA11);
    let failures = FailurePlan::random(s.node_count, 0.3, 60.0, &mut rng);
    let expected_dead = failures.failing_count();
    let cfg = RunConfig::new(Policy::pas_default())
        .with_failures(failures)
        .with_channel(ChannelKind::IidLoss(0.2));
    let r = run(&s, &f, &cfg);
    assert_eq!(r.delay.detected + r.delay.missed, r.delay.reached);
    assert!(expected_dead > 0);
    assert!(
        r.delay.missed <= expected_dead,
        "only dead nodes can miss on a non-receding front"
    );
}

/// The sweep executor reproduces sequential results exactly across the
/// crate boundary (parallelism does not perturb simulations).
#[test]
fn parallel_sweep_matches_sequential() {
    let f = radial();
    let seeds: Vec<u64> = (0..12).collect();
    let job = |&seed: &u64| {
        let s = Scenario::paper_default(seed);
        let r = run(&s, &f, &RunConfig::new(Policy::pas_default()));
        (r.delay.mean_delay_s.to_bits(), r.mean_energy_j().to_bits())
    };
    let par = parallel_map(&seeds, job);
    let seq: Vec<_> = seeds.iter().map(job).collect();
    assert_eq!(par, seq);
}

/// Every stimulus model satisfies the StimulusField contract the runner
/// relies on: coverage at the reported first arrival.
#[test]
fn stimulus_models_honour_contract() {
    let fields: Vec<Box<dyn StimulusField>> = vec![
        Box::new(RadialFront::constant(Vec2::new(5.0, 5.0), 0.7)),
        Box::new(AnisotropicFront::new(
            Vec2::new(5.0, 5.0),
            SpeedProfile::Constant { speed: 0.7 },
            pas_diffusion::aniso::DirectionalGain::CosineSkew {
                theta0: 1.0,
                k: 0.4,
            },
        )),
        Box::new(GaussianPlume::new(
            Vec2::new(5.0, 5.0),
            1000.0,
            1.0,
            Vec2::new(0.2, 0.0),
            1.0,
        )),
    ];
    let probes = [
        Vec2::new(8.0, 5.0),
        Vec2::new(15.0, 12.0),
        Vec2::new(2.0, 9.0),
    ];
    for field in &fields {
        for &p in &probes {
            if let Some(t) = field.first_arrival_time(p) {
                assert!(
                    field.is_covered(p, t + 1e-6),
                    "point must be covered just after first arrival"
                );
                assert!(
                    !field.is_covered(p, SimTime::from_secs((t.as_secs() - 1e-3).max(0.0))),
                    "point must be uncovered just before first arrival"
                );
            }
        }
    }
}
