//! Whole-run invariants checked through the recorded timeline: the Fig. 3
//! state diagram holds over complete executions, awake/asleep bookkeeping
//! matches the protocol states, and the spatial structure of Fig. 2
//! (covered core, alert ring, safe outskirts) actually emerges.

use pas::prelude::*;
use pas_core::AdaptiveParams;

fn pas_run_with_timeline(seed: u64) -> (Scenario, RunResult) {
    let scenario = Scenario::paper_default(seed);
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
    let policy = Policy::Pas(AdaptiveParams {
        max_sleep_s: 12.0,
        alert_threshold_s: 20.0,
        ..AdaptiveParams::default()
    });
    let r = run(&scenario, &field, &RunConfig::new(policy).with_timeline());
    (scenario, r)
}

#[test]
fn fig3_diagram_holds_over_entire_runs() {
    for seed in 0..5 {
        let (_, r) = pas_run_with_timeline(seed);
        let tl = r.timeline.as_ref().expect("timeline requested");
        assert!(
            tl.first_illegal_transition().is_none(),
            "illegal transition in seed {seed}: {:?}",
            tl.first_illegal_transition()
        );
        assert!(!tl.transitions.is_empty(), "a PAS run must transition");
    }
}

#[test]
fn covered_and_alert_nodes_are_awake() {
    let (_, r) = pas_run_with_timeline(1);
    let tl = r.timeline.as_ref().unwrap();
    // At the instant of any transition into Covered or Alert, the node must
    // be awake (sleeping nodes can neither sense nor decide).
    for rec in &tl.transitions {
        if matches!(rec.to, NodeState::Covered | NodeState::Alert) {
            assert!(
                tl.awake_at(rec.node, rec.t, false),
                "node {} entered {} while asleep at {}",
                rec.node,
                rec.to,
                rec.t
            );
        }
    }
}

#[test]
fn occupancies_partition_the_run() {
    let (_, r) = pas_run_with_timeline(2);
    let tl = r.timeline.as_ref().unwrap();
    let horizon = SimTime::from_secs(r.duration_s);
    for node in 0..r.node_count {
        let total: f64 = [NodeState::Safe, NodeState::Alert, NodeState::Covered]
            .iter()
            .map(|&s| tl.occupancy(node, s, horizon))
            .sum();
        assert!(
            (total - r.duration_s).abs() < 1e-6,
            "node {node}: occupancies sum to {total}, duration {}",
            r.duration_s
        );
    }
}

#[test]
fn final_counts_match_run_result() {
    let (_, r) = pas_run_with_timeline(3);
    let tl = r.timeline.as_ref().unwrap();
    let (covered, _, _) = tl.state_counts_at(r.node_count, SimTime::from_secs(r.duration_s));
    assert_eq!(covered, r.covered_final);
    let alerted = (0..r.node_count)
        .filter(|&i| {
            tl.transitions
                .iter()
                .any(|rec| rec.node == i && rec.to == NodeState::Alert)
        })
        .count();
    assert_eq!(alerted, r.alerted_ever);
}

/// Fig. 2's spatial structure: mid-run, covered nodes sit nearer the source
/// than safe nodes on average, with alert nodes in between.
#[test]
fn fig2_spatial_structure_emerges() {
    let (scenario, r) = pas_run_with_timeline(4);
    let tl = r.timeline.as_ref().unwrap();
    let source = Vec2::new(0.0, 0.0);
    // Sample the instant when roughly half the nodes are covered.
    let mid = SimTime::from_secs(r.duration_s * 0.45);
    let mut covered_d = Vec::new();
    let mut alert_d = Vec::new();
    let mut safe_d = Vec::new();
    for (i, &pos) in scenario.positions().iter().enumerate() {
        let d = source.distance(pos);
        match tl.state_at(i, mid) {
            NodeState::Covered => covered_d.push(d),
            NodeState::Alert => alert_d.push(d),
            NodeState::Safe => safe_d.push(d),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!covered_d.is_empty(), "mid-run must have covered nodes");
    assert!(!safe_d.is_empty(), "mid-run must have safe nodes");
    assert!(
        mean(&covered_d) < mean(&safe_d),
        "covered ({:.1} m) must sit nearer the source than safe ({:.1} m)",
        mean(&covered_d),
        mean(&safe_d)
    );
    if !alert_d.is_empty() {
        assert!(
            mean(&covered_d) < mean(&alert_d),
            "the alert ring sits outside the covered core"
        );
    }
}

#[test]
fn timeline_off_by_default_and_costs_nothing() {
    let scenario = Scenario::paper_default(5);
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
    let plain = run(&scenario, &field, &RunConfig::new(Policy::pas_default()));
    assert!(plain.timeline.is_none());
    // Recording must not change the simulation itself.
    let traced = run(
        &scenario,
        &field,
        &RunConfig::new(Policy::pas_default()).with_timeline(),
    );
    assert_eq!(
        plain.delay.mean_delay_s.to_bits(),
        traced.delay.mean_delay_s.to_bits()
    );
    assert_eq!(plain.events_processed, traced.events_processed);
}
