//! Acceptance: `pas report` on the registry's paper-default scenario
//! reproduces the paper's qualitative §4 claim *from batch data* — PAS
//! mean detection delay undercuts SAS at equal check interval, with
//! non-overlapping 95% CIs in the operating region where the paper's
//! Fig. 4 shows clear separation — and the report is deterministic
//! across thread counts.

use pas::prelude::*;
use pas_scenario::{execute, registry, ExecOptions};

fn paper_report(threads: usize) -> Report {
    let m = registry::builtin("paper-default").expect("registered");
    let batch = execute(&m, ExecOptions { threads }).expect("batch runs");
    Report::from_batch(&batch, &ReportOptions::default()).expect("report builds")
}

/// Fig. 4's separated region: PAS below SAS with non-overlapping CIs.
#[test]
fn pas_beats_sas_with_separated_confidence_intervals() {
    let report = paper_report(0);
    assert_eq!(
        report.compared,
        Some(("PAS".to_string(), "SAS".to_string())),
        "paper-default auto-compares the paper's headline pair"
    );
    // The paper shows clear separation once sleeping dominates the
    // delay budget; at short max-sleep the two curves cross.
    for x in [8.0, 12.0, 16.0, 20.0] {
        let cell = |label: &str| {
            report
                .cells
                .iter()
                .find(|c| c.x == x && c.policy == label)
                .unwrap_or_else(|| panic!("no ({x}, {label}) cell"))
        };
        let (pas, sas) = (cell("PAS"), cell("SAS"));
        assert!(
            pas.delay.mean < sas.delay.mean,
            "x={x}: PAS {:.3}s must undercut SAS {:.3}s",
            pas.delay.mean,
            sas.delay.mean
        );
        assert!(
            pas.delay.ci_hi < sas.delay.ci_lo,
            "x={x}: 95% CIs must not overlap (PAS hi {:.3} vs SAS lo {:.3})",
            pas.delay.ci_hi,
            sas.delay.ci_lo
        );
        // The paired test agrees: Δdelay = PAS − SAS significantly
        // negative, while PAS pays a small but significant energy
        // premium (the paper calls the difference trivial).
        let cmp = report
            .comparisons
            .iter()
            .find(|c| c.x == x)
            .unwrap_or_else(|| panic!("no comparison at x={x}"));
        assert!(cmp.delay.significant && cmp.delay.mean < 0.0, "x={x}");
        assert!(cmp.energy.significant && cmp.energy.mean > 0.0, "x={x}");
    }
}

/// The report is bit-deterministic across thread counts (the renderers
/// are pure, so byte equality of the model implies byte equality of
/// every format).
#[test]
fn report_identical_across_thread_counts() {
    let sequential = paper_report(1);
    let parallel = paper_report(0);
    assert_eq!(render_json(&sequential), render_json(&parallel));
    assert_eq!(render_md(&sequential), render_md(&parallel));
    assert_eq!(render_svg(&sequential), render_svg(&parallel));
}
