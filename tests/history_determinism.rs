//! The history sampler must be a pure observer: executing every golden
//! registry scenario while the background sampler thread snapshots the
//! metrics registry at an aggressive 5ms interval must reproduce the
//! exact bytes `tests/golden/*.csv` pins for the unsampled path. The
//! sampler only *reads* atomics the instrumented hot paths write, so
//! any influence on event order, RNG draws, or float accumulation —
//! e.g. a lock shared with a writer — would surface here as a byte
//! diff.

use std::time::Duration;

use pas_obs::history::{start_sampler, HistoryConfig};
use pas_scenario::{execute, registry, summary_csv, ExecOptions};

fn csv_of(name: &str) -> String {
    let m = registry::builtin(name).unwrap_or_else(|| panic!("`{name}` registered"));
    let batch = execute(&m, ExecOptions::default()).unwrap();
    summary_csv(&batch).render()
}

#[test]
fn golden_csvs_are_byte_identical_with_history_sampling_on() {
    let sampler = start_sampler(HistoryConfig {
        interval: Duration::from_millis(5),
        retention: 256,
    });
    let goldens = [
        ("paper-default", include_str!("golden/paper-default.csv")),
        ("paper-alert", include_str!("golden/paper-alert.csv")),
        ("wildfire-front", include_str!("golden/wildfire-front.csv")),
        ("gas-leak-city", include_str!("golden/gas-leak-city.csv")),
        (
            "plume-monitoring",
            include_str!("golden/plume-monitoring.csv"),
        ),
    ];
    for (name, want) in goldens {
        let got = csv_of(name);
        assert!(
            got == want,
            "`{name}` summary CSV drifted under history sampling\n\
             --- got ---\n{got}\n--- want ---\n{want}"
        );
    }

    // The equality above only means something if the sampler was live:
    // it must have snapshotted the execution counters the scenarios
    // bump, and its rings must render.
    let history = sampler.history();
    assert!(
        history.series_count() > 0,
        "sampler recorded no series while five batches executed"
    );
    let json = history.render_json();
    assert!(
        json.contains("pas.exec.points.count"),
        "sampler missed the execution counters:\n{json}"
    );
}
