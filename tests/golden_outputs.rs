//! Golden-output pin: every registry scenario that predates the
//! predictor layer must produce byte-identical summary CSVs forever.
//!
//! The files under `tests/golden/` were written by `pas run <scenario>
//! --out` on the commit *before* the estimation path was refactored into
//! the pluggable `Predictor` subsystem, then re-stamped when the sinks
//! gained the trailing `schema_version` column (every numeric byte was
//! verified unchanged across that regeneration — only the stamp column
//! was appended). Executing the same manifests through today's code
//! must reproduce them byte for byte — the refactor's central
//! no-regression promise (CI double-checks the same equality through
//! the real CLI binary).

use pas_scenario::{execute, registry, summary_csv, ExecOptions};

fn csv_of(name: &str) -> String {
    let m = registry::builtin(name).unwrap_or_else(|| panic!("`{name}` registered"));
    let batch = execute(&m, ExecOptions::default()).unwrap();
    summary_csv(&batch).render()
}

macro_rules! golden {
    ($test:ident, $name:literal, $file:literal) => {
        #[test]
        fn $test() {
            let got = csv_of($name);
            let want = include_str!($file);
            assert!(
                got == want,
                "`{}` summary CSV drifted from its pre-refactor golden\n\
                 --- got ---\n{got}\n--- want ---\n{want}",
                $name
            );
        }
    };
}

golden!(
    paper_default_is_byte_identical,
    "paper-default",
    "golden/paper-default.csv"
);
golden!(
    paper_alert_is_byte_identical,
    "paper-alert",
    "golden/paper-alert.csv"
);
golden!(
    wildfire_front_is_byte_identical,
    "wildfire-front",
    "golden/wildfire-front.csv"
);
golden!(
    gas_leak_city_is_byte_identical,
    "gas-leak-city",
    "golden/gas-leak-city.csv"
);
golden!(
    plume_monitoring_is_byte_identical,
    "plume-monitoring",
    "golden/plume-monitoring.csv"
);
