//! Profiling must be a pure observer: executing every golden registry
//! scenario with region profiling on — detail regions included, the
//! most invasive configuration the profiler has — must reproduce the
//! exact bytes `tests/golden/*.csv` pins for the uninstrumented path.
//! Scope guards sit inside the simulation hot loop (`sim.queue.*`,
//! `sim.rng`, `sim.wake_decision`, ...), so any profiler side effect on
//! event order, RNG draws, or float accumulation would surface here as
//! a byte diff.

use pas_scenario::{execute, registry, summary_csv, ExecOptions};

fn csv_of(name: &str) -> String {
    let m = registry::builtin(name).unwrap_or_else(|| panic!("`{name}` registered"));
    let batch = execute(&m, ExecOptions::default()).unwrap();
    summary_csv(&batch).render()
}

#[test]
fn golden_csvs_are_byte_identical_with_profiling_on() {
    pas_obs::profile::set_profiling(true);
    pas_obs::profile::set_detail(true);
    let goldens = [
        ("paper-default", include_str!("golden/paper-default.csv")),
        ("paper-alert", include_str!("golden/paper-alert.csv")),
        ("wildfire-front", include_str!("golden/wildfire-front.csv")),
        ("gas-leak-city", include_str!("golden/gas-leak-city.csv")),
        (
            "plume-monitoring",
            include_str!("golden/plume-monitoring.csv"),
        ),
    ];
    for (name, want) in goldens {
        let got = csv_of(name);
        assert!(
            got == want,
            "`{name}` summary CSV drifted under profiling\n\
             --- got ---\n{got}\n--- want ---\n{want}"
        );
    }
    pas_obs::profile::set_detail(false);

    // The equality above only means something if the profiler was live:
    // the scenario seams must actually have recorded into the table.
    let folded = pas_obs::profile::render_folded();
    for region in ["exec.point", "exec.reduce", "sim.run", "sim.wake_decision"] {
        assert!(
            folded.contains(region),
            "profile table is missing `{region}`:\n{folded}"
        );
    }
    // And the rendering itself is canonical: a second render of the
    // same table state is byte-identical.
    assert_eq!(folded, pas_obs::profile::render_folded());
}
