#!/usr/bin/env python3
"""Validate a `pas trace --format chrome` export.

Checks, in order:

1. the file is valid JSON with a top-level ``traceEvents`` array;
2. every event is either ``ph: "M"`` process metadata or a complete
   ``ph: "X"`` duration event (name, integer ts/dur/pid/tid, args with
   16-hex ``trace``/``span``/``parent`` ids);
3. all events share one trace id, span ids are unique, exactly one root
   (``parent == 0``, named ``job``) exists, and every non-root parent
   id resolves to a recorded span — i.e. the stitched tree is closed;
4. every ``pid`` maps to a named process, and at least ``--min-procs``
   distinct processes contributed spans (a dist-mode trace must span
   the server and every worker).

Exits non-zero with a message on the first violation; prints a one-line
summary on success.
"""

import argparse
import json
import re
import sys

HEX16 = re.compile(r"^[0-9a-f]{16}$")


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--min-procs",
        type=int,
        default=1,
        help="minimum distinct processes that must have recorded spans",
    )
    args = ap.parse_args()

    with open(args.trace, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    proc_names = {}  # pid -> name
    spans = {}  # span id -> event
    traces = set()
    roots = []
    span_pids = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") != "process_name":
                continue
            pid = ev.get("pid")
            name = ev.get("args", {}).get("name")
            if not isinstance(pid, int) or not name:
                fail(f"metadata event {i} lacks pid/name: {ev}")
            proc_names[pid] = name
            continue
        if ph != "X":
            fail(f"event {i} has unexpected ph {ph!r}")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"X event {i} ({ev.get('name')!r}) has non-integer {key}")
        if not ev.get("name"):
            fail(f"X event {i} has no name")
        a = ev.get("args")
        if not isinstance(a, dict):
            fail(f"X event {i} ({ev['name']!r}) has no args object")
        for key in ("trace", "span", "parent"):
            v = a.get(key)
            if not isinstance(v, str) or not HEX16.match(v):
                fail(f"X event {i} ({ev['name']!r}) args.{key} is not 16-hex: {v!r}")
        traces.add(a["trace"])
        if a["span"] in spans:
            fail(f"duplicate span id {a['span']} ({ev['name']!r})")
        spans[a["span"]] = ev
        span_pids.add(ev["pid"])
        if a["parent"] == "0" * 16:
            roots.append(ev)

    if not spans:
        fail("no X events recorded")
    if len(traces) != 1:
        fail(f"expected one trace id, found {len(traces)}: {sorted(traces)}")
    if len(roots) != 1:
        fail(f"expected exactly one root span, found {len(roots)}")
    if roots[0]["name"] != "job":
        fail(f"root span is {roots[0]['name']!r}, expected 'job'")

    for ev in spans.values():
        parent = ev["args"]["parent"]
        if parent != "0" * 16 and parent not in spans:
            fail(f"span {ev['name']!r} ({ev['args']['span']}) has missing parent {parent}")

    for pid in span_pids:
        if pid not in proc_names:
            fail(f"pid {pid} has spans but no process_name metadata")
    if len(span_pids) < args.min_procs:
        fail(
            f"spans from {len(span_pids)} process(es) "
            f"({sorted(proc_names[p] for p in span_pids)}), need >= {args.min_procs}"
        )

    names = sorted({ev["name"] for ev in spans.values()})
    procs = sorted(proc_names[p] for p in span_pids)
    print(
        f"check_trace: OK: {len(spans)} spans, 1 trace, 1 root, "
        f"{len(span_pids)} procs {procs}, span names {names}"
    )


if __name__ == "__main__":
    main()
