#!/usr/bin/env python3
"""Validate one region profile exported in all three `/profile` formats.

Given the folded-stack text, JSON, and SVG renderings of the same
profile, checks in order:

1. folded grammar: every line is ``frame(;frame)* <int self-us>`` with
   non-empty frames, and lines are in sorted order (the renderer's
   byte-stability contract);
2. JSON schema: a ``paths`` array of objects carrying ``stack``,
   ``calls``, ``total_us``, ``self_us``, ``samples`` with
   ``self_us <= total_us``, a ``dropped`` counter, and per-parent
   consistency — the sum of a stack's direct children's totals never
   exceeds the parent's total (beyond micro-second rounding);
3. the SVG parses as XML and contains one rect per visible frame;
4. every ``--require`` region name appears somewhere in the JSON stacks,
   and at least ``--min-regions`` distinct region names were recorded;
5. with ``--attribution-min R`` (dist-mode profiles): the scenario
   execution layer accounts for at least fraction R of the worker
   execute envelope — sum of ``exec.point`` totals >= R * sum of
   ``worker.shard.execute`` totals.

Exits non-zero with a message on the first violation; prints a one-line
summary on success.
"""

import argparse
import json
import re
import sys
import xml.etree.ElementTree as ET

LINE = re.compile(r"^(?P<stack>[^ ]+(?: [^ ]+)*) (?P<n>\d+)$")


def fail(msg: str) -> None:
    print(f"check_profile: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_folded(path: str) -> list:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail("folded output is empty")
    stacks = []
    for i, line in enumerate(lines):
        m = LINE.match(line)
        if not m:
            fail(f"folded line {i + 1} does not match 'stack <int>': {line!r}")
        stack = m.group("stack")
        frames = stack.split(";")
        if any(not fr for fr in frames):
            fail(f"folded line {i + 1} has an empty frame: {line!r}")
        stacks.append(stack)
    if stacks != sorted(stacks):
        fail("folded lines are not in sorted order")
    return stacks


def check_json(path: str) -> list:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"profile JSON does not parse: {e}")
    if not isinstance(doc.get("dropped"), int):
        fail("profile JSON lacks an integer 'dropped'")
    paths = doc.get("paths")
    if not isinstance(paths, list) or not paths:
        fail("profile JSON lacks a non-empty 'paths' array")
    by_stack = {}
    for i, p in enumerate(paths):
        for key in ("calls", "total_us", "self_us", "samples"):
            if not isinstance(p.get(key), int) or p[key] < 0:
                fail(f"path {i} has bad {key}: {p.get(key)!r}")
        if not isinstance(p.get("stack"), str) or not p["stack"]:
            fail(f"path {i} has no stack")
        if p["self_us"] > p["total_us"]:
            fail(f"path {p['stack']!r}: self {p['self_us']} > total {p['total_us']}")
        by_stack[p["stack"]] = p
    # A parent's total bounds its direct children (1 us rounding slack
    # per child: the renderer rounds ns to us independently).
    children = {}
    for stack in by_stack:
        if ";" in stack:
            children.setdefault(stack.rsplit(";", 1)[0], []).append(stack)
    for parent, kids in children.items():
        if parent not in by_stack:
            fail(f"stack {kids[0]!r} has no parent entry {parent!r}")
        total = sum(by_stack[k]["total_us"] for k in kids)
        if total > by_stack[parent]["total_us"] + len(kids):
            fail(
                f"children of {parent!r} sum to {total} us, "
                f"more than the parent's {by_stack[parent]['total_us']} us"
            )
    return paths


def check_svg(path: str) -> int:
    try:
        tree = ET.parse(path)
    except ET.ParseError as e:
        fail(f"SVG does not parse: {e}")
    ns = {"svg": "http://www.w3.org/2000/svg"}
    rects = tree.getroot().findall(".//svg:rect", ns)
    if len(rects) < 2:
        fail(f"SVG has {len(rects)} rects; expected a background plus frames")
    return len(rects)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("folded", help="folded-stack text rendering")
    ap.add_argument("json", help="JSON rendering")
    ap.add_argument("svg", help="SVG flamegraph rendering")
    ap.add_argument(
        "--min-regions",
        type=int,
        default=1,
        help="minimum distinct region names that must appear",
    )
    ap.add_argument(
        "--require",
        default="",
        help="comma-separated region names that must appear in some stack",
    )
    ap.add_argument(
        "--attribution-min",
        type=float,
        default=None,
        help="minimum fraction of worker.shard.execute total time that "
        "exec.point entries must account for (dist-mode profiles)",
    )
    args = ap.parse_args()

    folded_stacks = check_folded(args.folded)
    paths = check_json(args.json)
    rects = check_svg(args.svg)

    regions = {frame for p in paths for frame in p["stack"].split(";")}
    for name in filter(None, args.require.split(",")):
        if name not in regions:
            fail(f"required region {name!r} absent (have: {sorted(regions)})")
    if len(regions) < args.min_regions:
        fail(f"only {len(regions)} regions recorded, need >= {args.min_regions}")

    attribution = None
    if args.attribution_min is not None:
        leaf_total = lambda name: sum(  # noqa: E731
            p["total_us"] for p in paths if p["stack"].split(";")[-1] == name
        )
        exec_us = leaf_total("exec.point")
        shard_us = leaf_total("worker.shard.execute")
        if shard_us == 0:
            fail("no worker.shard.execute entries for the attribution check")
        attribution = exec_us / shard_us
        if attribution < args.attribution_min:
            fail(
                f"exec.point accounts for {attribution:.1%} of the "
                f"worker execute envelope, need >= {args.attribution_min:.0%}"
            )

    extra = f", attribution {attribution:.1%}" if attribution is not None else ""
    print(
        f"check_profile: OK: {len(folded_stacks)} folded stacks, "
        f"{len(paths)} JSON paths, {rects} SVG rects, "
        f"{len(regions)} regions{extra}"
    )


if __name__ == "__main__":
    main()
