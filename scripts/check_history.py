#!/usr/bin/env python3
"""Validate one `/metrics/history` export in both formats.

Given the JSON and SVG renderings of the same metric history, checks in
order:

1. JSON envelope: ``schema == 1``, positive ``interval_ms``, positive
   ``retention``, and a non-empty ``series`` array sorted by
   ``(name, labels)``;
2. per-series schema: every series carries ``name``, ``labels`` (a
   string map), ``kind`` in {counter, gauge, histogram}, and a ``t_ms``
   array of non-decreasing timestamps no longer than the retention;
3. per-kind arrays: counters carry ``values`` (len == t_ms) and
   ``rates`` (len == t_ms - 1, every finite rate >= 0 — counter rates
   can never be negative after reset clamping); gauges carry ``values``
   (len == t_ms); histograms carry ``count``, ``count_rate``, and
   ``p50``/``p95``/``p99`` window arrays (len == t_ms - 1, nullable);
4. the SVG parses as XML, contains no external references, and names at
   least one of the JSON series;
5. every ``--require`` series name appears, and at least
   ``--min-series`` distinct series were sampled.

Exits non-zero with a message on the first violation; prints a one-line
summary on success.
"""

import argparse
import json
import math
import sys
import xml.etree.ElementTree as ET

KINDS = {"counter", "gauge", "histogram"}


def fail(msg: str) -> None:
    print(f"check_history: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def num_array(series: dict, key: str, want_len: int, nullable: bool) -> list:
    arr = series.get(key)
    if not isinstance(arr, list):
        fail(f"series {series['name']!r} lacks array {key!r}")
    if len(arr) != want_len:
        fail(
            f"series {series['name']!r} {key}: length {len(arr)}, "
            f"expected {want_len}"
        )
    for v in arr:
        if v is None:
            if not nullable:
                fail(f"series {series['name']!r} {key} contains null")
            continue
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"series {series['name']!r} {key} contains {v!r}")
        if math.isnan(v) or math.isinf(v):
            fail(f"series {series['name']!r} {key} contains {v!r}")
    return arr


def check_json(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"history JSON does not parse: {e}")
    if doc.get("schema") != 1:
        fail(f"schema is {doc.get('schema')!r}, expected 1")
    interval = doc.get("interval_ms")
    if not isinstance(interval, int) or interval <= 0:
        fail(f"bad interval_ms: {interval!r}")
    retention = doc.get("retention")
    if not isinstance(retention, int) or retention <= 0:
        fail(f"bad retention: {retention!r}")
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail("history JSON lacks a non-empty 'series' array")

    keys = []
    for s in series:
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(f"series without a name: {s!r}")
        labels = s.get("labels")
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
        ):
            fail(f"series {name!r} has bad labels: {labels!r}")
        kind = s.get("kind")
        if kind not in KINDS:
            fail(f"series {name!r} has unknown kind {kind!r}")
        t_ms = s.get("t_ms")
        if not isinstance(t_ms, list) or not t_ms:
            fail(f"series {name!r} lacks a non-empty t_ms array")
        if len(t_ms) > retention:
            fail(f"series {name!r}: {len(t_ms)} samples exceed retention {retention}")
        if any(b < a for a, b in zip(t_ms, t_ms[1:])):
            fail(f"series {name!r}: t_ms is not non-decreasing")
        n = len(t_ms)
        if kind == "counter":
            num_array(s, "values", n, nullable=False)
            # Values may drop across a process restart; the rates must
            # clamp such windows to zero rather than going negative.
            rates = num_array(s, "rates", n - 1, nullable=False)
            if any(r < 0 for r in rates):
                fail(f"counter {name!r}: negative rate after reset clamp")
        elif kind == "gauge":
            num_array(s, "values", n, nullable=False)
        else:
            num_array(s, "count", n, nullable=False)
            rates = num_array(s, "count_rate", n - 1, nullable=False)
            if any(r < 0 for r in rates):
                fail(f"histogram {name!r}: negative count_rate")
            for q in ("p50", "p95", "p99"):
                num_array(s, q, n - 1, nullable=True)
        keys.append((name, tuple(sorted(labels.items()))))
    if keys != sorted(keys):
        fail("series are not sorted by (name, labels)")
    return doc


def check_svg(path: str, doc: dict) -> int:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        tree = ET.fromstring(text)
    except ET.ParseError as e:
        fail(f"SVG does not parse: {e}")
    for banned in ("href", "<script", "<image"):
        if banned in text:
            fail(f"SVG is not self-contained: contains {banned!r}")
    if not any(s["name"] in text for s in doc["series"]):
        fail("SVG names none of the JSON series")
    return sum(1 for _ in tree.iter())


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json", help="JSON rendering of /metrics/history")
    ap.add_argument("svg", help="SVG rendering of /metrics/history")
    ap.add_argument(
        "--min-series",
        type=int,
        default=1,
        help="minimum distinct series that must have been sampled",
    )
    ap.add_argument(
        "--require",
        default="",
        help="comma-separated series names that must appear",
    )
    args = ap.parse_args()

    doc = check_json(args.json)
    elements = check_svg(args.svg, doc)

    names = {s["name"] for s in doc["series"]}
    for name in filter(None, args.require.split(",")):
        if name not in names:
            fail(f"required series {name!r} absent (have: {sorted(names)})")
    if len(names) < args.min_series:
        fail(f"only {len(names)} series sampled, need >= {args.min_series}")

    samples = max(len(s["t_ms"]) for s in doc["series"])
    print(
        f"check_history: OK: {len(doc['series'])} series, "
        f"{len(names)} names, up to {samples} samples at "
        f"{doc['interval_ms']}ms, {elements} SVG elements"
    )


if __name__ == "__main__":
    main()
