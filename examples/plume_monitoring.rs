//! # River pollutant plume — receding coverage and detection timeouts
//!
//! The paper's motivating application is "a liquid pollutant [that] spreads
//! from the source". This example models an instantaneous chemical release
//! into a river: a Gaussian puff advected downstream while diffusing. The
//! plume *passes over* sensors and moves on — coverage recedes — which
//! exercises the paper's covered → (detection timeout) → safe transition
//! that monotone fronts never trigger.
//!
//! A Poisson-disk sensor grid lines the river reach; we compare policies on
//! delay and energy, then show PAS's per-component energy breakdown. The
//! reach, release, and policy grid come from the built-in
//! `plume-monitoring` manifest (`pas show plume-monitoring` prints it).
//!
//! **Expect an honest negative result here.** PAS's estimator assumes a
//! persistently advancing front; an advected puff violates that (the
//! upstream edge recedes, fringe expansion is glacial), so its predictions
//! flip-flop and its delay can land *above* SAS's on this stimulus. The
//! paper never evaluates receding stimuli — this example maps the boundary
//! of its assumptions.
//!
//! ```text
//! cargo run --release --example plume_monitoring
//! ```

use pas::prelude::*;
use pas_scenario::StimulusSpec;

fn main() {
    // A 100 m × 40 m river reach; 60 sensors at >= 6 m separation; release
    // at the upstream end (2 kg-equivalent mass, diffusivity 0.8 m²/s,
    // 0.6 m/s downstream current, detection threshold 1 unit) — all from
    // the manifest.
    let manifest = registry::builtin("plume-monitoring").expect("registered scenario");
    let scenario = manifest.scenario(manifest.run.base_seed);

    // Rebuild the puff concretely (not as `dyn StimulusField`) so we can
    // also report its extinction time below.
    let plume = match &manifest.stimulus {
        StimulusSpec::Plume {
            source,
            mass,
            diffusivity,
            current,
            threshold,
        } => GaussianPlume::new(
            Vec2::new(source.0, source.1),
            *mass,
            *diffusivity,
            Vec2::new(current.0, current.1),
            *threshold,
        ),
        other => panic!("plume-monitoring manifest must declare a plume, got {other:?}"),
    };
    println!(
        "River plume: extinction at {:.0} s; {} sensors over {} m reach\n",
        plume.extinction_time().as_secs(),
        scenario.node_count,
        scenario.region.width(),
    );

    println!(
        "{:<8} {:>8} {:>9} {:>10} {:>7} {:>7} {:>9}",
        "policy", "reached", "delay(s)", "energy(J)", "missed", "alerted", "covered@T"
    );
    for spec in &manifest.policies {
        let policy = manifest.policy(spec, &[]).expect("valid policy");
        let result = run(&scenario, &plume, &RunConfig::new(policy));
        println!(
            "{:<8} {:>8} {:>9.3} {:>10.3} {:>7} {:>7} {:>9}",
            result.policy_label,
            result.delay.reached,
            result.delay.mean_delay_s,
            result.mean_energy_j(),
            result.delay.missed,
            result.alerted_ever,
            result.covered_final,
        );
    }

    // PAS energy breakdown: where do the joules actually go?
    let pas = run(&scenario, &plume, &RunConfig::new(Policy::pas_default()));
    let b = pas.mean_breakdown();
    println!(
        "\nPAS per-node energy breakdown (mean over {} nodes):",
        pas.node_count
    );
    println!("  MCU active   {:>9.4} J", b.mcu_active_j);
    println!("  radio RX     {:>9.4} J", b.radio_rx_j);
    println!("  radio TX     {:>9.4} J", b.radio_tx_j);
    println!("  sleep        {:>9.4} J", b.sleep_j);
    println!("  transitions  {:>9.4} J", b.transition_j);
    println!("  total        {:>9.4} J", b.total_j());
    println!(
        "  controller/comms split: {:.1}% / {:.1}%",
        100.0 * b.controller_j() / b.total_j(),
        100.0 * b.comms_j() / b.total_j()
    );

    // Because the plume recedes, covered nodes return to safe and resume
    // duty-cycling — covered@T above should be far below `reached`.
    assert!(
        pas.covered_final < pas.delay.reached,
        "plume must have receded from most covered sensors"
    );

    println!(
        "\nNote: on this advected, receding stimulus PAS's directional\n\
         predictions misfire (alert flip-flop on the upstream edge), and its\n\
         delay can exceed SAS's — the boundary of the paper's front-advance\n\
         assumption, not a bug. See DESIGN.md §5."
    );
}
