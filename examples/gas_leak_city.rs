//! # Urban gas leak — anisotropic spreading and the alert-time dial
//!
//! The paper (§3.4): "the spreading of noxious gas in a city is highly
//! emergent. In this case, the alert area should be enlarged to minimize
//! detecting delays. In a less hazardous case, we can reduce the alert area
//! to cut down energy consumption."
//!
//! This example builds that exact knob: a wind-skewed (anisotropic) gas
//! front over a dense urban sensor grid, swept across alert-time
//! thresholds. The whole batch — deployment, wind field, threshold axis,
//! replicate seeds — is the built-in `gas-leak-city` manifest
//! (`pas run gas-leak-city` executes the same grid), and the executor
//! fans it out across every core. The output is the operating curve a
//! city operator would pick from: delay falls and energy rises as the
//! alert ring widens — Figs. 5 and 7 of the paper, on a realistic
//! stimulus.
//!
//! ```text
//! cargo run --release --example gas_leak_city
//! ```

use pas::prelude::*;

fn main() {
    // An 80 m × 80 m district, 80 lamp-post sensors on a grid; leak at a
    // mid-block site, wind from the south-west skewing the spread toward
    // the north-east. Seeds vary the wake phases and channel draws;
    // positions stay fixed. All of it declared once in the manifest.
    let manifest = registry::builtin("gas-leak-city").expect("registered scenario");

    println!("Urban gas leak, wind-skewed front — alert-time operating curve\n");
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>8}",
        "alert threshold", "delay(s)", "±std", "energy(J)", "misses"
    );

    // One call executes the full matrix: 5 thresholds × 8 seeds, in
    // parallel, bit-deterministically.
    let batch = execute(&manifest, ExecOptions::default()).expect("valid manifest");
    for point in &batch.summaries {
        let missed: usize = batch
            .records
            .iter()
            .filter(|r| r.x == point.x && r.policy_label == point.policy_label)
            .map(|r| r.missed)
            .sum();
        println!(
            "{:<18} {:>9.3} {:>10.3} {:>10.3} {:>8.1}",
            format!("{:.0} s", point.x),
            point.delay_mean_s,
            point.delay_std_s,
            point.energy_mean_j,
            missed as f64 / point.n as f64,
        );
    }

    // Reference bounds for the same incident, from the same manifest.
    let scenario = manifest.scenario(manifest.run.base_seed);
    let field = manifest.build_field();
    let ns = run(&scenario, field.as_ref(), &RunConfig::new(Policy::Ns));
    let oracle = run(&scenario, field.as_ref(), &RunConfig::new(Policy::Oracle));
    println!(
        "\nBounds: NS {:.3} J at 0 delay; Oracle {:.3} J at 0 delay.",
        ns.mean_energy_j(),
        oracle.mean_energy_j()
    );
    let widest = batch.summaries.last().expect("non-empty sweep");
    println!(
        "The emergency dial: widen the alert ring until delay is acceptable;\n\
         even the widest setting above uses {:.0}% of NS energy.",
        100.0 * widest.energy_mean_j / ns.mean_energy_j()
    );
}
