//! # Urban gas leak — anisotropic spreading and the alert-time dial
//!
//! The paper (§3.4): "the spreading of noxious gas in a city is highly
//! emergent. In this case, the alert area should be enlarged to minimize
//! detecting delays. In a less hazardous case, we can reduce the alert area
//! to cut down energy consumption."
//!
//! This example builds that exact knob: a wind-skewed (anisotropic) gas
//! front over a dense urban sensor grid, swept across alert-time
//! thresholds. The output is the operating curve a city operator would
//! pick from: delay falls and energy rises as the alert ring widens —
//! Figs. 5 and 7 of the paper, on a realistic stimulus.
//!
//! ```text
//! cargo run --release --example gas_leak_city
//! ```

use pas::prelude::*;
use pas_core::AdaptiveParams;
use pas_diffusion::aniso::DirectionalGain;

fn main() {
    // An 80 m × 80 m district, 80 lamp-post sensors on a grid. Seeds vary
    // the wake phases and channel draws; positions stay fixed.
    let scenario_at = |seed: u64| Scenario {
        region: Aabb::from_size(80.0, 80.0),
        node_count: 80,
        range_m: 15.0,
        deployment: DeploymentKind::Grid { cols: 10, rows: 8 },
        seed,
    };
    const SEEDS: u64 = 8;

    // Leak at a mid-block site; wind from the south-west skews spreading
    // toward the north-east at up to 1.5x the base 1.2 m/s rate.
    let field = AnisotropicFront::new(
        Vec2::new(20.0, 20.0),
        SpeedProfile::Constant { speed: 1.2 },
        DirectionalGain::CosineSkew {
            theta0: std::f64::consts::FRAC_PI_4,
            k: 0.5,
        },
    );

    println!("Urban gas leak, wind-skewed front — alert-time operating curve\n");
    println!(
        "{:<18} {:>9} {:>10} {:>9} {:>8}",
        "alert threshold", "delay(s)", "energy(J)", "alerted", "misses"
    );

    let mut last_energy = 0.0;
    for alert_s in [2.0, 5.0, 10.0, 20.0, 30.0] {
        let policy = Policy::Pas(AdaptiveParams {
            alert_threshold_s: alert_s,
            max_sleep_s: 12.0,
            ..AdaptiveParams::default()
        });
        let (mut delay, mut energy, mut alerted, mut missed) = (0.0, 0.0, 0usize, 0usize);
        for seed in 0..SEEDS {
            let result = run(&scenario_at(seed), &field, &RunConfig::new(policy));
            delay += result.delay.mean_delay_s;
            energy += result.mean_energy_j();
            alerted += result.alerted_ever;
            missed += result.delay.missed;
        }
        let n = SEEDS as f64;
        println!(
            "{:<18} {:>9.3} {:>10.3} {:>9.1} {:>8.1}",
            format!("{alert_s:.0} s"),
            delay / n,
            energy / n,
            alerted as f64 / n,
            missed as f64 / n,
        );
        last_energy = energy / n;
    }

    // Reference bounds for the same incident.
    let ns = run(&scenario_at(0), &field, &RunConfig::new(Policy::Ns));
    let oracle = run(&scenario_at(0), &field, &RunConfig::new(Policy::Oracle));
    println!(
        "\nBounds: NS {:.3} J at 0 delay; Oracle {:.3} J at 0 delay.",
        ns.mean_energy_j(),
        oracle.mean_energy_j()
    );
    println!(
        "The emergency dial: widen the alert ring until delay is acceptable;\n\
         even the widest setting above uses {:.0}% of NS energy.",
        100.0 * last_energy / ns.mean_energy_j()
    );
}
