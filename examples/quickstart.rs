//! # Quickstart — one PAS run, explained
//!
//! Simulates the paper's §4 scenario once per policy and prints the two
//! metrics the paper evaluates, plus the diagnostics a deployment engineer
//! would want. The setup — deployment, stimulus, policies — comes from the
//! built-in `paper-default` manifest (`pas show paper-default` prints it),
//! so this example and the `pas` CLI can never drift apart. Start here; the
//! other examples build realistic scenarios on the same API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pas::prelude::*;

fn main() {
    // The paper's setup: 30 nodes, 10 m transmission range, uniformly
    // deployed, a pollutant front spreading radially at 0.5 m/s — all
    // declared once in the registry manifest. The seed fixes the topology;
    // identical seeds give identical topologies across policies, so
    // comparisons are paired.
    let manifest = registry::builtin("paper-default").expect("registered scenario");
    let scenario = manifest.scenario(42);
    let field = manifest.build_field();

    println!("PAS quickstart — {}\n", manifest.description);
    println!(
        "{:<8} {:>9} {:>10} {:>8} {:>9} {:>9} {:>7}",
        "policy", "delay(s)", "energy(J)", "awake%", "requests", "responses", "alerted"
    );

    // The manifest's policy grid (NS, SAS, PAS) at the paper's default
    // maximum sleep interval, plus the clairvoyant Oracle lower bound.
    let at_default_sleep = vec![(
        "max_sleep_s".to_string(),
        pas_scenario::AxisValue::Num(10.0),
    )];
    let mut policies: Vec<Policy> = manifest
        .policies
        .iter()
        .map(|spec| {
            manifest
                .policy(spec, &at_default_sleep)
                .expect("valid policy")
        })
        .collect();
    policies.push(Policy::Oracle);

    for policy in &policies {
        let result = run(&scenario, field.as_ref(), &RunConfig::new(*policy));
        println!(
            "{:<8} {:>9.3} {:>10.3} {:>8.1} {:>9} {:>9} {:>7}",
            result.policy_label,
            result.delay.mean_delay_s,
            result.mean_energy_j(),
            result.mean_awake_fraction() * 100.0,
            result.requests_sent,
            result.responses_sent,
            result.alerted_ever,
        );
    }

    // The tradeoff in one sentence: PAS buys near-NS detection latency at
    // near-SAS energy, tunable through the alert threshold.
    let pas = run(
        &scenario,
        field.as_ref(),
        &RunConfig::new(Policy::pas_default()),
    );
    let ns = run(&scenario, field.as_ref(), &RunConfig::new(Policy::Ns));
    println!(
        "\nPAS used {:.0}% of NS energy and detected {} of {} reached nodes\n\
         (mean delay {:.2} s; misses: {}).",
        100.0 * pas.mean_energy_j() / ns.mean_energy_j(),
        pas.delay.detected,
        pas.delay.reached,
        pas.delay.mean_delay_s,
        pas.delay.missed,
    );
}
