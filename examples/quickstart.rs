//! # Quickstart — one PAS run, explained
//!
//! Simulates the paper's §4 scenario once per policy and prints the two
//! metrics the paper evaluates, plus the diagnostics a deployment engineer
//! would want. Start here; the other examples build realistic scenarios on
//! the same API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pas::prelude::*;

fn main() {
    // The paper's setup: 30 nodes, 10 m transmission range, uniformly
    // deployed. The seed fixes the topology; identical seeds give
    // identical topologies across policies, so comparisons are paired.
    let scenario = Scenario::paper_default(42);

    // The stimulus: a liquid pollutant front spreading radially at 0.5 m/s
    // from the region corner (the paper's diffusion-stimulus scenario).
    let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);

    println!("PAS quickstart — 30 nodes, 10 m range, 0.5 m/s front\n");
    println!(
        "{:<8} {:>9} {:>10} {:>8} {:>9} {:>9} {:>7}",
        "policy", "delay(s)", "energy(J)", "awake%", "requests", "responses", "alerted"
    );

    for policy in [
        Policy::Ns,
        Policy::sas_default(),
        Policy::pas_default(),
        Policy::Oracle,
    ] {
        let result = run(&scenario, &field, &RunConfig::new(policy));
        println!(
            "{:<8} {:>9.3} {:>10.3} {:>8.1} {:>9} {:>9} {:>7}",
            result.policy_label,
            result.delay.mean_delay_s,
            result.mean_energy_j(),
            result.mean_awake_fraction() * 100.0,
            result.requests_sent,
            result.responses_sent,
            result.alerted_ever,
        );
    }

    // The tradeoff in one sentence: PAS buys near-NS detection latency at
    // near-SAS energy, tunable through the alert threshold.
    let pas = run(
        &scenario,
        &field,
        &RunConfig::new(Policy::pas_default()),
    );
    let ns = run(&scenario, &field, &RunConfig::new(Policy::Ns));
    println!(
        "\nPAS used {:.0}% of NS energy and detected {} of {} reached nodes\n\
         (mean delay {:.2} s; misses: {}).",
        100.0 * pas.mean_energy_j() / ns.mean_energy_j(),
        pas.delay.detected,
        pas.delay.reached,
        pas.delay.mean_delay_s,
        pas.delay.missed,
    );
}
