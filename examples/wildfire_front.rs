//! # Wildfire front over heterogeneous terrain — FMM ground truth,
//! failures, and a lossy channel, all at once
//!
//! The hardest scenario in this repository: a fire front crossing terrain
//! whose local spread rate varies (grassland fast, rock slow, a damp creek
//! bed nearly stalls it). The ground truth is the eikonal first-arrival
//! field solved by Fast Marching — the paper's "spreads along the boundary
//! normal" assumption generalised to heterogeneous media. On top we enable
//! both of the paper's §5 future-work stressors: sensors destroyed by the
//! fire itself (failure injection) and a degraded radio channel.
//!
//! The terrain, deployment, failure plan, and channel all come from the
//! built-in `wildfire-front` manifest (`pas show wildfire-front` prints
//! it); this example peels the stressors back on one by one to show what
//! each costs.
//!
//! ```text
//! cargo run --release --example wildfire_front
//! ```

use pas::prelude::*;
use pas_scenario::failure_plan;

fn main() {
    // Terrain-dependent spread rate (m/s): fast grass in the open, a slow
    // rocky band, and a damp creek that nearly stops the front — declared
    // as `[[stimulus.patches]]` rectangles in the manifest and solved by
    // Fast Marching here.
    let manifest = registry::builtin("wildfire-front").expect("registered scenario");
    let region = manifest.region();
    let fire = manifest.stimulus.build_eikonal(region);

    // 90 sensors dropped by air (uniform), 18 m radio range.
    let scenario = manifest.scenario(manifest.run.base_seed);

    // The fire destroys sensors ~30 s after the front passes them
    // (`[failures] kind = "front_kill"` in the manifest).
    let failures = failure_plan(&manifest, &scenario, &fire);

    println!("Wildfire over heterogeneous terrain — FMM fronts + failures + loss\n");
    println!(
        "{:<28} {:>9} {:>10} {:>7} {:>8}",
        "configuration", "delay(s)", "energy(J)", "missed", "alerted"
    );

    let pas = manifest
        .policy(&manifest.policies[0], &[])
        .expect("valid policy");

    let configs: Vec<(&str, RunConfig)> = vec![
        ("PAS, clean channel", RunConfig::new(pas)),
        (
            "PAS + fire kills sensors",
            RunConfig::new(pas).with_failures(failures.clone()),
        ),
        (
            // The manifest's full configuration: kills + its lossy channel.
            "PAS + kills + 20% loss",
            RunConfig::new(pas)
                .with_failures(failures.clone())
                .with_channel(manifest.channel.kind()),
        ),
        (
            "PAS + kills + grey region",
            RunConfig::new(pas)
                .with_failures(failures)
                .with_channel(ChannelKind::DistanceLoss(0.6, 0.8)),
        ),
    ];

    for (label, cfg) in &configs {
        let result = run(&scenario, &fire, cfg);
        println!(
            "{:<28} {:>9.3} {:>10.3} {:>7} {:>8}",
            label,
            result.delay.mean_delay_s,
            result.mean_energy_j(),
            result.delay.missed,
            result.alerted_ever,
        );
    }

    // Terrain sanity: the creek shields the far bank for a long time.
    let near_bank = fire.first_arrival_time(Vec2::new(60.0, 60.0));
    let far_bank = fire.first_arrival_time(Vec2::new(60.0, 80.0));
    println!(
        "\nTerrain check: front reaches (60,60) at {:.0} s, but the far side\n\
         of the creek (60,80) only at {:.0} s — the damp band buys {:.0} s.",
        near_bank.unwrap().as_secs(),
        far_bank.unwrap().as_secs(),
        far_bank.unwrap().as_secs() - near_bank.unwrap().as_secs()
    );

    // Extract and summarise the front line at t = 120 s (marching squares
    // over the arrival field) — what a command dashboard would draw.
    let arrival_grid =
        pas_diffusion::contour::ScalarGrid::from_fn(region.min, 121, 121, 1.0, 1.0, |p| {
            fire.first_arrival_time(p)
                .map(|t| t.as_secs())
                .unwrap_or(f64::INFINITY)
        });
    let contours = extract_contours(&arrival_grid, 120.0);
    let total_len: f64 = contours.iter().map(|c| c.length()).sum();
    println!(
        "Front line at t = 120 s: {} contour segment(s), {:.0} m total length.",
        contours.len(),
        total_len
    );
}
