//! # Wildfire front over heterogeneous terrain — FMM ground truth,
//! failures, and a lossy channel, all at once
//!
//! The hardest scenario in this repository: a fire front crossing terrain
//! whose local spread rate varies (grassland fast, rock slow, a damp creek
//! bed nearly stalls it). The ground truth is the eikonal first-arrival
//! field solved by Fast Marching — the paper's "spreads along the boundary
//! normal" assumption generalised to heterogeneous media. On top we enable
//! both of the paper's §5 future-work stressors: sensors destroyed by the
//! fire itself (failure injection) and a degraded radio channel.
//!
//! ```text
//! cargo run --release --example wildfire_front
//! ```

use pas::prelude::*;
use pas_core::AdaptiveParams;

fn main() {
    let region = Aabb::from_size(120.0, 120.0);

    // Terrain-dependent spread rate (m/s): fast grass in the open, a slow
    // rocky band, and a damp creek that nearly stops the front.
    let speed_map = |p: Vec2| -> f64 {
        let rocky = p.x > 60.0 && p.x < 80.0;
        let creek = (p.y - 70.0).abs() < 6.0 && p.x > 30.0;
        if creek {
            0.05
        } else if rocky {
            0.15
        } else {
            0.6
        }
    };
    let grid = SpeedGrid::from_fn(region, 121, 121, speed_map);
    let fire = EikonalField::solve(grid, &[Vec2::new(5.0, 5.0)], SimTime::ZERO);

    // 90 sensors dropped by air (uniform), 18 m radio range.
    let scenario = Scenario {
        region,
        node_count: 90,
        range_m: 18.0,
        deployment: DeploymentKind::Uniform,
        seed: 1234,
    };

    // The fire destroys sensors ~30 s after the front passes them.
    let kills: Vec<(usize, SimTime)> = scenario
        .positions()
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| {
            fire.first_arrival_time(p)
                .map(|t| (i, t + 30.0))
        })
        .collect();
    let failures = FailurePlan::targeted(scenario.node_count, &kills);

    println!("Wildfire over heterogeneous terrain — FMM fronts + failures + loss\n");
    println!(
        "{:<28} {:>9} {:>10} {:>7} {:>8}",
        "configuration", "delay(s)", "energy(J)", "missed", "alerted"
    );

    let pas = Policy::Pas(AdaptiveParams {
        alert_threshold_s: 25.0,
        max_sleep_s: 15.0,
        ..AdaptiveParams::default()
    });

    let configs: Vec<(&str, RunConfig)> = vec![
        ("PAS, clean channel", RunConfig::new(pas)),
        (
            "PAS + fire kills sensors",
            RunConfig::new(pas).with_failures(failures.clone()),
        ),
        (
            "PAS + kills + 20% loss",
            RunConfig::new(pas)
                .with_failures(failures.clone())
                .with_channel(ChannelKind::IidLoss(0.20)),
        ),
        (
            "PAS + kills + grey region",
            RunConfig::new(pas)
                .with_failures(failures)
                .with_channel(ChannelKind::DistanceLoss(0.6, 0.8)),
        ),
    ];

    for (label, cfg) in &configs {
        let result = run(&scenario, &fire, cfg);
        println!(
            "{:<28} {:>9.3} {:>10.3} {:>7} {:>8}",
            label,
            result.delay.mean_delay_s,
            result.mean_energy_j(),
            result.delay.missed,
            result.alerted_ever,
        );
    }

    // Terrain sanity: the creek shields the far bank for a long time.
    let near_bank = fire.first_arrival_time(Vec2::new(60.0, 60.0));
    let far_bank = fire.first_arrival_time(Vec2::new(60.0, 80.0));
    println!(
        "\nTerrain check: front reaches (60,60) at {:.0} s, but the far side\n\
         of the creek (60,80) only at {:.0} s — the damp band buys {:.0} s.",
        near_bank.unwrap().as_secs(),
        far_bank.unwrap().as_secs(),
        far_bank.unwrap().as_secs() - near_bank.unwrap().as_secs()
    );

    // Extract and summarise the front line at t = 120 s (marching squares
    // over the arrival field) — what a command dashboard would draw.
    let arrival_grid = pas_diffusion::contour::ScalarGrid::from_fn(
        region.min,
        121,
        121,
        1.0,
        1.0,
        |p| {
            fire.first_arrival_time(p)
                .map(|t| t.as_secs())
                .unwrap_or(f64::INFINITY)
        },
    );
    let contours = extract_contours(&arrival_grid, 120.0);
    let total_len: f64 = contours.iter().map(|c| c.length()).sum();
    println!(
        "Front line at t = 120 s: {} contour segment(s), {:.0} m total length.",
        contours.len(),
        total_len
    );
}
