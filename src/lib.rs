//! # PAS — Prediction-based Adaptive Sleeping for environment monitoring
//!
//! A complete, from-scratch reproduction of *Yang, Xu, Dai, Gu: "PAS:
//! Prediction-based Adaptive Sleeping for Environment Monitoring in Sensor
//! Networks"* (ICPP Workshops 2007), as a production-quality Rust workspace.
//!
//! This facade crate re-exports the whole public API:
//!
//! | Crate | What it provides |
//! |-------|------------------|
//! | [`geom`] | 2-D vectors, shapes, polylines, hulls, spatial hashing |
//! | [`sim`] | deterministic discrete-event engine + seedable PRNG |
//! | [`diffusion`] | stimulus ground truth: fronts, plumes, eikonal/FMM |
//! | [`platform`] | Telos power model, energy metering, frame sizing |
//! | [`net`] | deployments, unit-disk topology, channels, broadcast |
//! | [`core`] | the PAS algorithm, SAS/NS/Oracle baselines, the runner |
//! | [`metrics`] | delay/energy metrics, statistics, tables, CSV |
//! | [`sweep`] | parallel parameter sweeps with ordered, seeded results |
//! | [`scenario`] | declarative TOML manifests, batch execution, the registry |
//! | [`report`] | statistical analysis: bootstrap CIs, paired deltas, md/json/svg |
//! | [`server`] | batch HTTP API: job queue, content-addressed result cache |
//! | [`dist`] | distributed execution: worker fleet, lease scheduler |
//!
//! ## Quick start
//!
//! ```
//! use pas::prelude::*;
//!
//! // The paper's setup: 30 nodes, 10 m range; a pollutant front spreading
//! // at 0.5 m/s from the region corner.
//! let scenario = Scenario::paper_default(42);
//! let field = RadialFront::constant(Vec2::new(0.0, 0.0), 0.5);
//!
//! let result = run(&scenario, &field, &RunConfig::new(Policy::pas_default()));
//! assert!(result.delay.mean_delay_s < 10.0);
//! assert!(result.mean_energy_j() > 0.0);
//! ```
//!
//! Whole experiment *batches* — deployment × stimulus × policies ×
//! parameter axes × seeds — are declared as TOML manifests and executed by
//! the [`scenario`] crate (or the `pas` CLI: `pas run paper-default`):
//!
//! ```
//! use pas::prelude::*;
//!
//! let mut manifest = registry::builtin("paper-default").unwrap();
//! manifest.sweep[0].values.truncate(1); // shrink the batch for the doctest
//! manifest.run.replicates = 2;
//! let batch = execute(&manifest, ExecOptions::default()).unwrap();
//! assert_eq!(batch.summaries.len(), manifest.policies.len());
//! ```
//!
//! See `examples/` for full scenarios and `crates/pas-bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pas_core as core;
pub use pas_diffusion as diffusion;
pub use pas_dist as dist;
pub use pas_geom as geom;
pub use pas_metrics as metrics;
pub use pas_net as net;
pub use pas_platform as platform;
pub use pas_report as report;
pub use pas_scenario as scenario;
pub use pas_server as server;
pub use pas_sim as sim;
pub use pas_sweep as sweep;

/// One-stop import for applications.
pub mod prelude {
    pub use pas_core::prelude::*;
    pub use pas_diffusion::prelude::*;
    pub use pas_dist::prelude::*;
    pub use pas_geom::prelude::*;
    pub use pas_metrics::prelude::*;
    pub use pas_net::prelude::*;
    pub use pas_platform::prelude::*;
    pub use pas_report::{render_json, render_md, render_svg, Report, ReportOptions};
    pub use pas_scenario::prelude::*;
    pub use pas_server::prelude::*;
    pub use pas_sim::prelude::*;
    pub use pas_sweep::prelude::*;
}
