//! `pas` — run declarative PAS experiment batches from the command line.
//!
//! ```text
//! pas list                         enumerate built-in scenarios
//! pas show <name>                  print a built-in manifest's TOML
//! pas validate <path>              parse + validate a manifest file
//! pas expand <name|path>           print the expanded run matrix shape
//! pas run <name|path> [options]    execute a batch and report summaries
//!
//! run options:
//!   --out FILE.csv       write per-point delay/energy summaries
//!   --raw FILE.jsonl     write every run as one JSON object per line
//!   --threads N          worker threads (0 = all cores, 1 = sequential)
//!   --quiet              suppress the stdout table
//! ```
//!
//! Scenario arguments resolve against the built-in registry first and fall
//! back to the filesystem, so `pas run paper-default` and
//! `pas run my/batch.toml` both work.

use pas_scenario::{execute, expand, registry, ExecOptions, Manifest};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> &'static str {
    "pas — declarative PAS experiment batches

USAGE:
    pas list                          enumerate built-in scenarios
    pas show <name>                   print a built-in manifest's TOML
    pas validate <path>               parse + validate a manifest file
    pas expand <name|path>            print the expanded run matrix shape
    pas run <name|path> [options]     execute a batch and report summaries

RUN OPTIONS:
    --out FILE.csv       write per-point delay/energy summaries
    --raw FILE.jsonl     write every run as one JSON object per line
    --threads N          worker threads (0 = all cores, 1 = sequential)
    --quiet              suppress the stdout table
"
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Registry name first, file path second.
fn load(arg: &str) -> Result<Manifest, String> {
    if let Some(parsed) = registry::get(arg) {
        return parsed.map_err(|e| format!("built-in `{arg}`: {e}"));
    }
    let path = Path::new(arg);
    if path.exists() {
        Manifest::from_path(path).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "`{arg}` is neither a built-in scenario ({}) nor a file",
            registry::names().join(", ")
        ))
    }
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<20} {:>6} {:>9}  description",
        "name", "runs", "policies"
    );
    for (name, _) in registry::BUILTINS {
        let m = registry::builtin(name).expect("builtins parse");
        let runs = expand(&m).map(|p| p.len()).unwrap_or(0);
        println!(
            "{:<20} {:>6} {:>9}  {}",
            name,
            runs,
            m.policies.len(),
            m.description
        );
    }
    ExitCode::SUCCESS
}

fn cmd_show(name: &str) -> ExitCode {
    match registry::raw(name) {
        Some(src) => {
            print!("{src}");
            ExitCode::SUCCESS
        }
        None => fail(format!(
            "no built-in scenario `{name}` (try: {})",
            registry::names().join(", ")
        )),
    }
}

fn cmd_validate(path: &str) -> ExitCode {
    match Manifest::from_path(Path::new(path)) {
        Ok(m) => match expand(&m) {
            Ok(points) => {
                println!("ok: `{}` expands to {} runs", m.name, points.len());
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        Err(e) => fail(e),
    }
}

fn cmd_expand(arg: &str) -> ExitCode {
    let m = match load(arg) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let points = match expand(&m) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let axis_points: usize = m.sweep.iter().map(|a| a.values.len()).product();
    println!("scenario   {}", m.name);
    println!(
        "matrix     {} axis point(s) x {} policies x {} seeds = {} runs",
        axis_points,
        m.policies.len(),
        m.run.replicates,
        points.len()
    );
    for axis in &m.sweep {
        println!("axis       {} = {:?}", axis.field, axis.values);
    }
    for p in &m.policies {
        let overrides: Vec<String> = p
            .overrides
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "policy     {:<10} ({}{}{})",
            p.label,
            p.kind,
            if overrides.is_empty() { "" } else { "; " },
            overrides.join(", ")
        );
    }
    ExitCode::SUCCESS
}

struct RunArgs {
    scenario: String,
    out: Option<PathBuf>,
    raw: Option<PathBuf>,
    threads: usize,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut scenario = None;
    let mut out = None;
    let mut raw = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(v));
            }
            "--raw" => {
                let v = it.next().ok_or("--raw needs a file path")?;
                raw = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if scenario.replace(other.to_string()).is_some() {
                    return Err("more than one scenario argument".to_string());
                }
            }
        }
    }
    Ok(RunArgs {
        scenario: scenario.ok_or("missing scenario name or manifest path")?,
        out,
        raw,
        threads,
        quiet,
    })
}

fn cmd_run(args: &[String]) -> ExitCode {
    let run_args = match parse_run_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let m = match load(&run_args.scenario) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let n_runs = match expand(&m) {
        Ok(p) => p.len(),
        Err(e) => return fail(e),
    };
    if !run_args.quiet {
        eprintln!("running `{}`: {} runs ...", m.name, n_runs);
    }
    let batch = match execute(
        &m,
        ExecOptions {
            threads: run_args.threads,
        },
    ) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    if !run_args.quiet {
        print!("{}", pas_scenario::summary_table(&batch).render());
    }
    if let Some(path) = &run_args.out {
        if let Err(e) = pas_scenario::write_summary_csv(&batch, path) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !run_args.quiet {
            println!("wrote {}", path.display());
        }
    }
    if let Some(path) = &run_args.raw {
        if let Err(e) = pas_scenario::write_records_jsonl(&batch, path) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !run_args.quiet {
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => match args.get(1) {
            Some(name) => cmd_show(name),
            None => fail("show needs a scenario name"),
        },
        Some("validate") => match args.get(1) {
            Some(path) => cmd_validate(path),
            None => fail("validate needs a manifest path"),
        },
        Some("expand") => match args.get(1) {
            Some(arg) => cmd_expand(arg),
            None => fail("expand needs a scenario name or manifest path"),
        },
        Some("run") => cmd_run(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown command `{other}`\n\n{}", usage())),
    }
}
