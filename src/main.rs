//! `pas` — run declarative PAS experiment batches from the command line.
//!
//! ```text
//! pas list                         enumerate built-in scenarios
//! pas show <name>                  print a built-in manifest's TOML
//! pas validate <path>              parse + validate a manifest file
//! pas expand <name|path>           print the expanded run matrix shape
//! pas run <name|path> [options]    execute a batch and report summaries
//! pas report <src> [options]       statistical report (md/json/svg) of a
//!                                  batch, manifest, or saved sink file
//! pas serve [options]              run the batch API server
//! pas worker [options]             join a server as an execution worker
//! pas submit <name|path> [options] run a batch on a server (with caching)
//! pas status [options]             server health + per-worker progress
//! pas top [options]                live fleet dashboard from /metrics/history
//! pas profile [options]            region profile: flamegraph / folded / json
//! pas bench [options]              time expansion, batches, dist scaling,
//!                                  server saturation (--server)
//! ```
//!
//! Scenario arguments resolve against the built-in registry first and fall
//! back to the filesystem, so `pas run paper-default` and
//! `pas run my/batch.toml` both work. `pas submit` sends the same manifest
//! to a `pas serve` instance and returns results byte-identical to
//! `pas run` — warm submissions are answered from the server's
//! content-addressed cache without re-simulating, and with
//! `--no-local-exec` the batch is sharded across a `pas worker` fleet
//! with the same byte-for-byte guarantee.

use pas_dist::{Scheduler, SchedulerOptions, WorkerOptions};
use pas_scenario::{execute, expand, registry, ExecOptions, Manifest};
use pas_server::{
    Client, ClientError, HistoryFormat, ProfileFormat, ResultCache, ResultFormat, RetryPolicy,
    Server, ServerOptions, TraceFormat,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// Default server address (loopback; pick a fixed high port).
const DEFAULT_ADDR: &str = "127.0.0.1:8479";

fn usage() -> &'static str {
    "pas — declarative PAS experiment batches

USAGE:
    pas list                          enumerate built-in scenarios
    pas show <name>                   print a built-in manifest's TOML
    pas validate <path>               parse + validate a manifest file
    pas expand <name|path>            print the expanded run matrix shape
    pas run <name|path> [options]     execute a batch and report summaries
    pas report <src> [options]        statistical report of a batch: src is a
                                      scenario name, manifest path, or a saved
                                      .jsonl/.csv sink file
    pas serve [options]               run the batch API server
    pas worker [options]              join a server as an execution worker
    pas submit <name|path> [options]  run a batch on a server (with caching)
    pas status [options]              server health + per-worker progress
    pas top [options]                 live terminal dashboard: rates, queue,
                                      cache, latency, per-worker lanes with
                                      sparklines, refreshing in place
    pas trace <job-id> [options]      fetch a job's causal span trace
    pas profile [<name|path>] [opts]  region profile: run a manifest locally
                                      (detail regions on) or sample a running
                                      server's /profile window, as a folded
                                      stack listing, SVG flamegraph, or JSON
    pas bench [options]               time expansion, batches, dist scaling,
                                      or server saturation (--server); gate on
                                      the unified bench history

RUN OPTIONS:
    --out FILE.csv       write per-point delay/energy summaries
    --raw FILE.jsonl     write every run as one JSON object per line
    --threads N          worker threads (0 = manifest [run] threads, then
                         all cores; 1 = sequential)
    --quiet              suppress the stdout table

REPORT OPTIONS:
    --format FMT         md (default) | json | svg
    --out FILE           write the report to FILE instead of stdout
    --compare A B        paired-by-seed comparison of policies A − B
                         (default: PAS − SAS when both labels exist)
    --threads N          worker threads when src needs executing
    --quiet              suppress progress on stderr

SERVE OPTIONS:
    --addr HOST:PORT     bind address            (default 127.0.0.1:8479)
    --cache-dir DIR      result cache directory  (default .pas-cache)
    --threads N          worker threads per job  (default: manifest, then cores)
    --queue-cap N        max queued jobs before 429 (default 64)
    --no-local-exec      don't execute jobs in-process; leave them to the
                         distributed scheduler and `pas worker` fleet
    --lease-ms N         shard lease lifetime    (default 10000)
    --heartbeat-ms N     worker heartbeat cadence (default 2000)
    --shard-points N     points per shard (default 0 = auto)
    --metrics            expose the Prometheus text registry at GET /metrics
                         and the sampled time series at GET /metrics/history
    --history-interval-ms N  metric history sampling interval (default 1000;
                         needs --metrics)
    --history-retention N    samples retained per series (default 120;
                         needs --metrics)

WORKER OPTIONS:
    --connect HOST:PORT  server address          (default 127.0.0.1:8479)
    --threads N          local execution threads (default all cores)
    --name NAME          fleet display name      (default worker-<pid>)
    --poll-ms N          idle lease poll interval (default 200)
    --max-shards N       exit after N shards (default: run until drain)
    --fail-after-points N  fault-injection drill: crash (no report) after
                         executing N points
    --quiet              suppress lease/report progress on stderr

SUBMIT OPTIONS:
    --addr HOST:PORT     server address          (default 127.0.0.1:8479)
    --out FILE.csv       write the returned summary CSV
    --raw FILE.jsonl     also fetch per-run JSONL
    --poll-ms N          status poll interval    (default 200)
    --retries N          backoff retries on 429/conn-refused (default 8)
    -v, --verbose        print a per-cause retry tally, a live points/s
                         readout while the job runs, and, when the
                         server exposes traces (`pas serve --metrics`),
                         a queued/execute/download latency breakdown
    --quiet              suppress progress; print nothing but errors

STATUS OPTIONS:
    --addr HOST:PORT     server address          (default 127.0.0.1:8479)
    --metrics            also render the server's /metrics exposition:
                         counters and gauges verbatim, histograms as one
                         p50/p95/p99 summary line per series
                         (the server must run with `pas serve --metrics`)
    --raw                with --metrics, dump the exposition verbatim
                         (raw histogram buckets included); without it the
                         summary also derives req/s and points/s from the
                         server's metric history when available

TOP OPTIONS:
    --addr HOST:PORT     server address          (default 127.0.0.1:8479)
    --interval-ms N      refresh interval        (default 1000)
    --frames N           render N frames then exit (default: until Ctrl-C)
                         (the server must run with `pas serve --metrics`)

TRACE OPTIONS:
    --addr HOST:PORT     server address          (default 127.0.0.1:8479)
    --format FMT         tree (default) | chrome | critical-path:
                         deterministic span tree, Chrome trace-event JSON
                         (load in chrome://tracing or Perfetto), or the
                         per-name self-time ranking
                         (the server must run with `pas serve --metrics`)

PROFILE OPTIONS:
    <name|path>          local mode: execute this scenario with region
                         profiling (detail regions included) and render
                         the in-process profile
    --serve-url HOST:PORT  remote mode: fetch GET /profile from a running
                         `pas serve --metrics` instance instead
    --seconds N          remote mode: reset the server's table and profile
                         a fresh N-second window (max 60)
    --format FMT         folded (default) | svg | json
    --hz N               local mode: also run the wall-clock sampler at
                         N Hz, populating per-stack sample counts
    --threads N          local mode: execution threads (default 1)
    --out FILE           write the rendering to FILE instead of stdout

BENCH OPTIONS:
    --out FILE           output JSON path (default BENCH_batch.json,
                         BENCH_dist.json with --dist,
                         BENCH_predictors.json with --predictors,
                         BENCH_queue.json with --queue, or
                         BENCH_server.json with --server); results
                         append to the file's versioned history with
                         commit/date metadata (legacy files upgrade in place)
    --server             saturation load harness: ramp concurrent closed-loop
                         submit clients against a server (an in-process one
                         unless --addr names a live instance), find the
                         throughput knee, and record max sustained jobs/s,
                         p99 at the knee, and error/429 counts
    --addr HOST:PORT     with --server: target a running server instead of
                         booting an in-process one
    --max-clients N      with --server: top of the 1,2,4,.. client ramp
                         (default 32)
    --step-ms N          with --server: measured duration of each ramp step
                         (default 1500)
    --dist N             distributed scaling bench: cold-run paper-default
                         on in-process fleets of 1/2/../N single-threaded
                         workers vs the single-process baseline
    --predictors         per-predictor hot-path bench: sequential point
                         throughput of every arrival-predictor variant on
                         the paper workload
    --queue              event-queue microbench: steady-state push+pop
                         throughput of the calendar queue vs the heap
                         reference at 1k/100k/1M pending events
    --profile            batch bench only: also time the sequential grid
                         with region profiling off, record the derived
                         profile_overhead_pct and a per-region self-time
                         breakdown in BENCH_batch.json
    --gate [FILES...]    regression gate: compare each history's newest
                         entry against the previous one; exit non-zero on a
                         throughput drop beyond the tolerance (default
                         files: the three BENCH_*.json)
    --max-drop PCT       gate tolerance, percent (default 35)
"
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Registry name first, file path second.
fn load(arg: &str) -> Result<Manifest, String> {
    if let Some(parsed) = registry::get(arg) {
        return parsed.map_err(|e| format!("built-in `{arg}`: {e}"));
    }
    let path = Path::new(arg);
    if path.exists() {
        Manifest::from_path(path).map_err(|e| e.to_string())
    } else {
        Err(format!(
            "`{arg}` is neither a built-in scenario ({}) nor a file",
            registry::names().join(", ")
        ))
    }
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<20} {:>6} {:>9}  description",
        "name", "runs", "policies"
    );
    for (name, _) in registry::BUILTINS {
        let m = registry::builtin(name).expect("builtins parse");
        let runs = expand(&m).map(|p| p.len()).unwrap_or(0);
        println!(
            "{:<20} {:>6} {:>9}  {}",
            name,
            runs,
            m.policies.len(),
            m.description
        );
    }
    ExitCode::SUCCESS
}

fn cmd_show(name: &str) -> ExitCode {
    match registry::raw(name) {
        Some(src) => {
            print!("{src}");
            ExitCode::SUCCESS
        }
        None => fail(format!(
            "no built-in scenario `{name}` (try: {})",
            registry::names().join(", ")
        )),
    }
}

fn cmd_validate(path: &str) -> ExitCode {
    match Manifest::from_path(Path::new(path)) {
        Ok(m) => match expand(&m) {
            Ok(points) => {
                println!("ok: `{}` expands to {} runs", m.name, points.len());
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        Err(e) => fail(e),
    }
}

fn cmd_expand(arg: &str) -> ExitCode {
    let m = match load(arg) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let points = match expand(&m) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let axis_points: usize = m.sweep.iter().map(|a| a.values.len()).product();
    println!("scenario   {}", m.name);
    println!(
        "matrix     {} axis point(s) x {} policies x {} seeds = {} runs",
        axis_points,
        m.policies.len(),
        m.run.replicates,
        points.len()
    );
    for axis in &m.sweep {
        let values: Vec<String> = axis.values.iter().map(|v| v.to_string()).collect();
        println!("axis       {} = [{}]", axis.field, values.join(", "));
    }
    for p in &m.policies {
        let mut details: Vec<String> = Vec::new();
        if let Some(pred) = &p.predictor {
            details.push(format!("predictor={}", pred.name()));
        }
        details.extend(p.overrides.iter().map(|(k, v)| format!("{k}={v}")));
        println!(
            "policy     {:<10} ({}{}{})",
            p.label,
            p.kind,
            if details.is_empty() { "" } else { "; " },
            details.join(", ")
        );
    }
    ExitCode::SUCCESS
}

struct RunArgs {
    scenario: String,
    out: Option<PathBuf>,
    raw: Option<PathBuf>,
    threads: usize,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut scenario = None;
    let mut out = None;
    let mut raw = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(v));
            }
            "--raw" => {
                let v = it.next().ok_or("--raw needs a file path")?;
                raw = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if scenario.replace(other.to_string()).is_some() {
                    return Err("more than one scenario argument".to_string());
                }
            }
        }
    }
    Ok(RunArgs {
        scenario: scenario.ok_or("missing scenario name or manifest path")?,
        out,
        raw,
        threads,
        quiet,
    })
}

fn cmd_run(args: &[String]) -> ExitCode {
    let run_args = match parse_run_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let m = match load(&run_args.scenario) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let n_runs = match expand(&m) {
        Ok(p) => p.len(),
        Err(e) => return fail(e),
    };
    if !run_args.quiet {
        eprintln!("running `{}`: {} runs ...", m.name, n_runs);
    }
    let batch = match execute(
        &m,
        ExecOptions {
            threads: run_args.threads,
        },
    ) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    if !run_args.quiet {
        print!("{}", pas_scenario::summary_table(&batch).render());
    }
    if let Some(path) = &run_args.out {
        if let Err(e) = pas_scenario::write_summary_csv(&batch, path) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !run_args.quiet {
            println!("wrote {}", path.display());
        }
    }
    if let Some(path) = &run_args.raw {
        if let Err(e) = pas_scenario::write_records_jsonl(&batch, path) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !run_args.quiet {
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

struct ReportArgs {
    source: String,
    format: String,
    out: Option<PathBuf>,
    compare: Option<(String, String)>,
    threads: usize,
    quiet: bool,
}

fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut source = None;
    let mut format = "md".to_string();
    let mut out = None;
    let mut compare = None;
    let mut threads = 0usize;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs md|json|svg")?;
                if !["md", "json", "svg"].contains(&v.as_str()) {
                    return Err(format!("--format: `{v}` is not md, json, or svg"));
                }
                format = v.clone();
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            "--compare" => {
                let a = it.next().ok_or("--compare needs two policy labels")?;
                let b = it.next().ok_or("--compare needs two policy labels")?;
                compare = Some((a.clone(), b.clone()));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if source.replace(other.to_string()).is_some() {
                    return Err("more than one source argument".to_string());
                }
            }
        }
    }
    Ok(ReportArgs {
        source: source.ok_or("missing source: scenario name, manifest, .jsonl, or .csv")?,
        format,
        out,
        compare,
        threads,
        quiet,
    })
}

fn cmd_report(args: &[String]) -> ExitCode {
    let rep = match parse_report_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let opts = pas_report::ReportOptions {
        compare: rep.compare.clone(),
    };
    let path = Path::new(&rep.source);
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase);
    let is_sink_file =
        path.exists() && matches!(ext.as_deref(), Some("jsonl") | Some("ndjson") | Some("csv"));
    let report = if is_sink_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(format!("reading {}: {e}", path.display())),
        };
        let built = if ext.as_deref() == Some("csv") {
            // A summary CSV carries only means — there are no per-run
            // replicates to pair, so an explicit comparison request
            // must fail loudly rather than be silently dropped.
            if rep.compare.is_some() {
                return fail(format!(
                    "{}: --compare needs per-run records (a .jsonl sink); \
                     a summary CSV carries only means",
                    path.display()
                ));
            }
            pas_report::parse_summary_csv(&text)
                .map_err(|e| format!("{}: {e}", path.display()))
                .and_then(|ing| {
                    let name = path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("summary")
                        .to_string();
                    pas_report::Report::from_summaries(&name, &ing.x_label, &ing.summaries)
                        .map_err(|e| e.to_string())
                })
        } else {
            pas_report::parse_records_jsonl(&text)
                .map_err(|e| format!("{}: {e}", path.display()))
                .and_then(|ing| {
                    pas_report::Report::from_records(
                        &ing.scenario,
                        &ing.x_label,
                        &ing.records,
                        &opts,
                    )
                    .map_err(|e| e.to_string())
                })
        };
        match built {
            Ok(r) => r,
            Err(e) => return fail(e),
        }
    } else {
        let m = match load(&rep.source) {
            Ok(m) => m,
            Err(e) => return fail(e),
        };
        if !rep.quiet {
            let runs = expand(&m).map(|p| p.len()).unwrap_or(0);
            eprintln!("reporting `{}`: {} runs ...", m.name, runs);
        }
        let batch = match execute(
            &m,
            ExecOptions {
                threads: rep.threads,
            },
        ) {
            Ok(b) => b,
            Err(e) => return fail(e),
        };
        match pas_report::Report::from_batch(&batch, &opts) {
            Ok(r) => r,
            Err(e) => return fail(e),
        }
    };
    let body = match rep.format.as_str() {
        "json" => pas_report::render_json(&report),
        "svg" => pas_report::render_svg(&report),
        _ => pas_report::render_md(&report),
    };
    match &rep.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                return fail(format!("writing {}: {e}", path.display()));
            }
            if !rep.quiet {
                eprintln!("wrote {}", path.display());
            }
        }
        None => print!("{body}"),
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

struct ServeArgs {
    addr: String,
    cache_dir: PathBuf,
    opts: ServerOptions,
    sched: SchedulerOptions,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cache_dir = PathBuf::from(".pas-cache");
    let mut opts = ServerOptions::default();
    let mut sched = SchedulerOptions::default();
    let mut it = args.iter();
    let ms = |v: &String, flag: &str| -> Result<Duration, String> {
        v.parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|_| format!("{flag}: `{v}` is not a number"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--cache-dir" => {
                cache_dir = PathBuf::from(it.next().ok_or("--cache-dir needs a path")?)
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a number")?;
                opts.queue_capacity = v
                    .parse()
                    .map_err(|_| format!("--queue-cap: `{v}` is not a number"))?;
            }
            "--no-local-exec" => opts.local_exec = false,
            "--metrics" => opts.metrics = true,
            "--history-interval-ms" => {
                opts.history_interval = ms(
                    it.next().ok_or("--history-interval-ms needs a number")?,
                    "--history-interval-ms",
                )?;
                if opts.history_interval.is_zero() {
                    return Err("--history-interval-ms must be at least 1".to_string());
                }
            }
            "--history-retention" => {
                let v = it.next().ok_or("--history-retention needs a number")?;
                opts.history_retention = v
                    .parse()
                    .map_err(|_| format!("--history-retention: `{v}` is not a number"))?;
            }
            "--lease-ms" => {
                sched.lease = ms(it.next().ok_or("--lease-ms needs a number")?, "--lease-ms")?
            }
            "--heartbeat-ms" => {
                sched.heartbeat = ms(
                    it.next().ok_or("--heartbeat-ms needs a number")?,
                    "--heartbeat-ms",
                )?
            }
            "--shard-points" => {
                let v = it.next().ok_or("--shard-points needs a number")?;
                sched.shard_points = v
                    .parse()
                    .map_err(|_| format!("--shard-points: `{v}` is not a number"))?;
            }
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    Ok(ServeArgs {
        addr,
        cache_dir,
        opts,
        sched,
    })
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let serve = match parse_serve_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let cache = match ResultCache::open(&serve.cache_dir) {
        Ok(c) => c,
        Err(e) => return fail(format!("opening cache {}: {e}", serve.cache_dir.display())),
    };
    let warm = cache.len();
    let mut server = match Server::bind(serve.addr.as_str(), cache.clone(), serve.opts) {
        Ok(s) => s,
        Err(e) => return fail(format!("binding {}: {e}", serve.addr)),
    };
    // The distributed scheduler rides on the same listener: `/healthz`
    // plus the `/dist/*` worker protocol. With --no-local-exec it is the
    // only execution backend; otherwise it coexists with the in-process
    // pool (each job runs on exactly one of the two).
    let scheduler = Scheduler::new(server.queue(), cache, serve.sched);
    scheduler.spawn_ticker();
    server.set_router(scheduler.into_router());
    match server.local_addr() {
        Ok(addr) => eprintln!(
            "pas-server listening on {addr} (cache: {}, {warm} warm entries, {})",
            serve.cache_dir.display(),
            if serve.opts.local_exec {
                "local exec + dist"
            } else {
                "dist only"
            }
        ),
        Err(_) => eprintln!("pas-server listening on {}", serve.addr),
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(format!("server: {e}")),
    }
}

// ---------------------------------------------------------------------------
// worker / status
// ---------------------------------------------------------------------------

fn parse_worker_args(args: &[String]) -> Result<(String, WorkerOptions), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut opts = WorkerOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => addr = it.next().ok_or("--connect needs HOST:PORT")?.clone(),
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--name" => opts.name = it.next().ok_or("--name needs a value")?.clone(),
            "--poll-ms" => {
                let v = it.next().ok_or("--poll-ms needs a number")?;
                opts.poll = Duration::from_millis(
                    v.parse()
                        .map_err(|_| format!("--poll-ms: `{v}` is not a number"))?,
                );
            }
            "--max-shards" => {
                let v = it.next().ok_or("--max-shards needs a number")?;
                opts.max_shards = Some(
                    v.parse()
                        .map_err(|_| format!("--max-shards: `{v}` is not a number"))?,
                );
            }
            "--fail-after-points" => {
                let v = it.next().ok_or("--fail-after-points needs a number")?;
                opts.fail_after_points = Some(
                    v.parse()
                        .map_err(|_| format!("--fail-after-points: `{v}` is not a number"))?,
                );
            }
            "--quiet" => opts.verbose = false,
            other => return Err(format!("unknown worker option `{other}`")),
        }
    }
    Ok((addr, opts))
}

fn cmd_worker(args: &[String]) -> ExitCode {
    let (addr, mut opts) = match parse_worker_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    opts.verbose = opts.verbose || std::env::var_os("PAS_WORKER_VERBOSE").is_some();
    eprintln!("pas-worker `{}` connecting to {addr}", opts.name);
    match pas_dist::worker::run(&addr, opts) {
        Ok(summary) => {
            eprintln!(
                "pas-worker {}: {} shards, {} points{}",
                summary.worker,
                summary.shards,
                summary.points,
                if summary.died { " (died by drill)" } else { "" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("worker: {e}")),
    }
}

fn cmd_status(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut metrics = false;
    let mut raw = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--metrics" => metrics = true,
            "--raw" => raw = true,
            other => return fail(format!("unknown status option `{other}`")),
        }
    }
    let client = Client::new(addr.clone());
    let health = match client.healthz() {
        Ok(h) => h,
        Err(e) => return fail(format!("{addr}: {e}")),
    };
    println!("server     {addr}");
    // The two `_dropped` keys surface telemetry loss: spans evicted from
    // the trace ring and scopes lost to profile-table overflow. Non-zero
    // means `pas trace` / `pas profile` output is incomplete.
    for key in [
        "queue_depth",
        "active_jobs",
        "workers",
        "trace_dropped",
        "profile_dropped",
    ] {
        if let Some(v) = pas_server::json::find_u64(&health, key) {
            println!("{key:<15} {v}");
        }
    }
    if let Some(true) = pas_server::json::find_bool(&health, "draining") {
        println!("draining        yes");
    }
    match client.workers_table() {
        Ok(table) if !table.trim().is_empty() => {
            println!();
            print!("{table}");
        }
        _ => {}
    }
    if metrics {
        match client.metrics() {
            Ok(text) => {
                println!();
                if raw {
                    print!("{text}");
                } else {
                    // Derived rates lead the summary: the cumulative
                    // counters below say how much ever happened, two
                    // history samples say how fast it is happening now.
                    if let Some(rates) = status_rates(&client) {
                        print!("{rates}");
                        println!();
                    }
                    print!("{}", summarize_metrics(&text));
                }
            }
            Err(e) => {
                return fail(format!(
                    "{addr}: /metrics: {e} (is the server running with --metrics?)"
                ))
            }
        }
    }
    ExitCode::SUCCESS
}

/// Current rates from the server's metric history (`req/s`, submits/s,
/// points/s), each the newest sampling window's derivative. `None` when
/// the server has no history (older build, or sampler not yet warm) —
/// the status summary then just shows cumulative counters as before.
fn status_rates(client: &Client) -> Option<String> {
    let body = client.metrics_history(HistoryFormat::Json).ok()?;
    let dump = pas_obs::history::parse_dump(std::str::from_utf8(&body).ok()?)?;
    if dump.series.is_empty() {
        return None;
    }
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "req/s           {:.1}",
        dump.rate_sum("pas.server.http.requests.count", None)
    );
    let _ = writeln!(
        out,
        "submits/s       {:.1}",
        dump.rate_sum("pas.queue.submit.count", None)
    );
    let _ = writeln!(
        out,
        "points/s        {:.1}",
        dump.rate_sum("pas.exec.points.count", None)
            + dump.rate_sum(
                "pas.dist.report.points.count",
                Some(("outcome", "accepted"))
            )
    );
    Some(out)
}

/// One histogram label-set being folded down while summarizing a
/// Prometheus exposition: cumulative buckets in exposition order, then
/// the trailing `_sum`/`_count` pair.
#[derive(Default)]
struct HistAcc {
    buckets: Vec<(String, u64)>,
    sum: String,
}

/// The smallest bucket bound covering quantile `q`, as `<=BOUND` — or
/// `>LAST_FINITE` when the mass lands in the `+Inf` overflow bucket.
fn hist_quantile(buckets: &[(String, u64)], count: u64, q: f64) -> String {
    let target = (q * count as f64).ceil().max(1.0) as u64;
    for (i, (le, cum)) in buckets.iter().enumerate() {
        if *cum < target {
            continue;
        }
        if le != "+Inf" {
            return format!("<={le}");
        }
        return match i.checked_sub(1).and_then(|j| buckets.get(j)) {
            Some((prev, _)) => format!(">{prev}"),
            None => ">0".to_string(),
        };
    }
    "=?".to_string()
}

/// Re-render a Prometheus text exposition for human eyes: counter and
/// gauge lines (and `# TYPE` headers) pass through verbatim — scripts
/// grepping e.g. `pas_server_http_requests_count` keep working — while
/// each histogram label-set's bucket/sum/count block collapses into one
/// `name{labels} count=N sum=S p50.. p95.. p99..` line. Quantiles are
/// bucket-bound estimates, which is all a fixed-bound histogram can say.
fn summarize_metrics(text: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // Name of the histogram the current `# TYPE` block declares, if any.
    let mut hist: Option<String> = None;
    let mut acc = HistAcc::default();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            hist = rest
                .split_once(' ')
                .filter(|(_, kind)| *kind == "histogram")
                .map(|(name, _)| name.to_string());
            acc = HistAcc::default();
            out.push_str(line);
            out.push('\n');
            continue;
        }
        // Within a histogram block each label set is contiguous:
        // buckets ascending, then `_sum`, then `_count` — so the count
        // line is the flush point.
        let series = hist.as_deref().and_then(|name| {
            let tail = line.strip_prefix(name)?;
            let (head, value) = tail.rsplit_once(' ')?;
            Some((head.to_string(), value.to_string()))
        });
        match series {
            Some((head, value)) if head.starts_with("_bucket") => {
                let le = head
                    .split_once("le=\"")
                    .and_then(|(_, r)| r.split_once('"'))
                    .map(|(le, _)| le.to_string())
                    .unwrap_or_default();
                acc.buckets.push((le, value.parse().unwrap_or(0)));
            }
            Some((head, value)) if head.starts_with("_sum") => {
                acc.sum = value;
            }
            Some((head, value)) if head.starts_with("_count") => {
                let labels = head.strip_prefix("_count").unwrap_or("");
                let count: u64 = value.parse().unwrap_or(0);
                let name = hist.as_deref().unwrap_or("");
                if count == 0 {
                    let _ = writeln!(out, "{name}{labels} count=0");
                } else {
                    let _ = writeln!(
                        out,
                        "{name}{labels} count={count} sum={} p50{} p95{} p99{}",
                        acc.sum,
                        hist_quantile(&acc.buckets, count, 0.50),
                        hist_quantile(&acc.buckets, count, 0.95),
                        hist_quantile(&acc.buckets, count, 0.99),
                    );
                }
                acc = HistAcc::default();
            }
            _ => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

/// Render up to `width` trailing values as a unicode sparkline, scaled
/// to their own min..max (a flat series renders as a low bar, not
/// noise). Non-finite values (empty percentile windows) leave a gap.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail: Vec<f64> = values
        .iter()
        .copied()
        .skip(values.len().saturating_sub(width))
        .collect();
    let finite: Vec<f64> = tail.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    tail.iter()
        .map(|v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = ((v - lo) / span * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

/// One `pas top` frame, rendered from a healthz body and a parsed
/// metric history. Pure so the layout is unit-testable; every line is
/// erase-to-eol terminated by the caller.
fn top_frame(addr: &str, health: &str, dump: &pas_obs::history::Dump, frame: u64) -> Vec<String> {
    use std::fmt::Write as _;
    let h_u64 = |k: &str| pas_server::json::find_u64(health, k).unwrap_or(0);
    let mut lines = Vec::new();
    lines.push(format!(
        "pas top — {addr} · up {}s · {} worker(s) · frame {frame} (Ctrl-C quits)",
        h_u64("uptime_s"),
        h_u64("workers").max(h_u64("workers_alive")),
    ));
    lines.push(String::new());

    let depth = dump
        .named("pas.queue.depth.jobs")
        .next()
        .map(|s| s.values.clone())
        .unwrap_or_default();
    lines.push(format!(
        "queue    depth {:<5} {:<24} submits/s {:<8.1} jobs done/s {:<8.1}",
        h_u64("queue_depth"),
        sparkline(&depth, 24),
        dump.rate_sum("pas.queue.submit.count", None),
        dump.rate_sum("pas.queue.jobs.count", None),
    ));

    let points_rate = dump.rate_sum("pas.exec.points.count", None)
        + dump.rate_sum(
            "pas.dist.report.points.count",
            Some(("outcome", "accepted")),
        );
    let hit_rate = dump.rate_sum("pas.cache.lookup.count", Some(("outcome", "hit")));
    let miss_rate = dump.rate_sum("pas.cache.lookup.count", Some(("outcome", "miss")));
    let lookups = hit_rate + miss_rate;
    let mut line = format!("exec     points/s {points_rate:<10.1} cache ");
    if lookups > 0.0 {
        let _ = write!(
            line,
            "{:.0}% hit of {lookups:.1}/s",
            100.0 * hit_rate / lookups
        );
    } else {
        line.push_str("idle");
    }
    lines.push(line);

    // HTTP: total request rate plus the busiest route's window
    // percentiles. (Percentiles cannot be merged across routes — the
    // buckets can, but one route's tail would vanish into another's
    // bulk — so the dashboard shows the hottest route honestly.)
    let req_rate = dump.rate_sum("pas.server.http.requests.count", None);
    let busiest = dump
        .named("pas.server.http.latency.microseconds")
        .filter(|s| s.count_rate.last().copied().unwrap_or(0.0) > 0.0)
        .max_by(|a, b| {
            a.count_rate
                .last()
                .copied()
                .unwrap_or(0.0)
                .total_cmp(&b.count_rate.last().copied().unwrap_or(0.0))
        });
    let mut line = format!("http     req/s {req_rate:<10.1}");
    if let Some(s) = busiest {
        let q = |v: &[f64]| v.last().copied().filter(|v| v.is_finite());
        if let (Some(p50), Some(p95), Some(p99)) = (q(&s.p50), (q(&s.p95)), q(&s.p99)) {
            let _ = write!(
                line,
                " {} p50 {p50:.0}us p95 {p95:.0}us p99 {p99:.0}us",
                s.label("route").unwrap_or("?"),
            );
        }
    }
    lines.push(line);

    // One lane per dist worker: executed points carried as a cumulative
    // gauge on heartbeats, differenced into a rate lane here.
    let mut workers: Vec<_> = dump.named("pas.dist.worker.executed.points").collect();
    workers.sort_by_key(|s| s.label("worker").unwrap_or("").to_string());
    if !workers.is_empty() {
        lines.push(String::new());
        lines.push(format!("workers  ({} reporting)", workers.len()));
        for s in workers {
            let rates = s.gauge_rates();
            lines.push(format!(
                "  {:<16} {:<24} {:>8.1} points/s",
                s.label("worker").unwrap_or("?"),
                sparkline(&rates, 24),
                rates.last().copied().unwrap_or(0.0),
            ));
        }
    }
    lines
}

fn cmd_top(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut interval_ms = 1000u64;
    let mut frames: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--interval-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => interval_ms = n,
                _ => return fail("--interval-ms needs a number >= 1"),
            },
            "--frames" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => frames = Some(n),
                _ => return fail("--frames needs a number >= 1"),
            },
            other => return fail(format!("unknown top option `{other}`")),
        }
    }
    let client = Client::new(addr.clone());
    let mut frame = 0u64;
    loop {
        let health = match client.healthz() {
            Ok(h) => h,
            Err(e) => return fail(format!("{addr}: {e}")),
        };
        let body = match client.metrics_history(HistoryFormat::Json) {
            Ok(b) => b,
            // The degradation path: a server without `--metrics` refuses
            // with guidance — report it instead of an empty dashboard.
            Err(ClientError::Api(status, msg)) => {
                return fail(format!("{addr}: /metrics/history: {status} {msg}"))
            }
            Err(e) => return fail(format!("{addr}: /metrics/history: {e}")),
        };
        let Some(dump) = std::str::from_utf8(&body)
            .ok()
            .and_then(pas_obs::history::parse_dump)
        else {
            return fail(format!(
                "{addr}: /metrics/history returned unparseable JSON"
            ));
        };
        frame += 1;
        // First frame clears the screen; later ones repaint from the
        // top-left and erase each line's tail, so the view refreshes in
        // place without flicker.
        let mut out = if frame == 1 {
            "\x1b[2J\x1b[H".to_string()
        } else {
            "\x1b[H".to_string()
        };
        for line in top_frame(&addr, &health, &dump, frame) {
            out.push_str(&line);
            out.push_str("\x1b[K\n");
        }
        out.push_str("\x1b[J");
        print!("{out}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if frames.is_some_and(|n| frame >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

// ---------------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------------

fn cmd_trace(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut format = TraceFormat::Tree;
    let mut job: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("tree") => format = TraceFormat::Tree,
                Some("chrome") => format = TraceFormat::Chrome,
                Some("critical-path") => format = TraceFormat::CriticalPath,
                _ => return fail("--format needs tree, chrome, or critical-path"),
            },
            other if other.starts_with('-') => {
                return fail(format!("unknown trace option `{other}`"))
            }
            other => match other.parse() {
                Ok(id) if job.is_none() => job = Some(id),
                Ok(_) => return fail("more than one job id"),
                Err(_) => return fail(format!("`{other}` is not a job id")),
            },
        }
    }
    let Some(id) = job else {
        return fail("trace needs a job id (printed by `pas submit -v`, or in GET /jobs/:id)");
    };
    let client = Client::new(addr.clone());
    match client.trace(id, format) {
        Ok(body) => {
            print!("{}", String::from_utf8_lossy(&body));
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!(
            "{addr}: /jobs/{id}/trace: {e} (is the server running with --metrics?)"
        )),
    }
}

/// All `("ts", "dur")` value pairs (µs) of Chrome trace events named
/// `name` — the tiny scan `pas submit -v` uses for its latency
/// breakdown; the renderer emits `"name"` then `"ts"` then `"dur"`
/// within each event.
fn chrome_ts_durs(chrome: &str, name: &str) -> Vec<(u64, u64)> {
    let field = |tail: &str, key: &str| -> Option<u64> {
        let at = tail.find(key)? + key.len();
        let num: String = tail[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        num.parse().ok()
    };
    let needle = format!("\"name\":\"{name}\"");
    let mut out = Vec::new();
    let mut rest = chrome;
    while let Some(pos) = rest.find(&needle) {
        let tail = &rest[pos + needle.len()..];
        if let (Some(ts), Some(dur)) = (field(tail, "\"ts\":"), field(tail, "\"dur\":")) {
            out.push((ts, dur));
        }
        rest = &rest[pos + needle.len()..];
    }
    out
}

/// All `"dur"` values (µs) of Chrome trace events named `name`.
fn chrome_durs(chrome: &str, name: &str) -> Vec<u64> {
    chrome_ts_durs(chrome, name)
        .into_iter()
        .map(|(_, d)| d)
        .collect()
}

// ---------------------------------------------------------------------------
// profile
// ---------------------------------------------------------------------------

struct ProfileArgs {
    scenario: Option<String>,
    serve_url: Option<String>,
    seconds: Option<u64>,
    format: ProfileFormat,
    hz: Option<u32>,
    threads: usize,
    out: Option<PathBuf>,
}

fn parse_profile_args(args: &[String]) -> Result<ProfileArgs, String> {
    let mut scenario = None;
    let mut serve_url = None;
    let mut seconds = None;
    let mut format = ProfileFormat::Folded;
    let mut hz = None;
    let mut threads = 1usize;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serve-url" | "--addr" => {
                serve_url = Some(it.next().ok_or("--serve-url needs HOST:PORT")?.clone())
            }
            "--seconds" => {
                let v = it.next().ok_or("--seconds needs a number")?;
                seconds = Some(
                    v.parse()
                        .map_err(|_| format!("--seconds: `{v}` is not a number"))?,
                );
            }
            "--format" => match it.next().map(String::as_str) {
                Some("folded") => format = ProfileFormat::Folded,
                Some("svg") => format = ProfileFormat::Svg,
                Some("json") => format = ProfileFormat::Json,
                _ => return Err("--format needs folded, svg, or json".to_string()),
            },
            "--hz" => {
                let v = it.next().ok_or("--hz needs a number")?;
                hz = Some(
                    v.parse()
                        .map_err(|_| format!("--hz: `{v}` is not a number"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            other if other.starts_with('-') => {
                return Err(format!("unknown profile option `{other}`"))
            }
            other => {
                if scenario.replace(other.to_string()).is_some() {
                    return Err("more than one scenario argument".to_string());
                }
            }
        }
    }
    Ok(ProfileArgs {
        scenario,
        serve_url,
        seconds,
        format,
        hz,
        threads,
        out,
    })
}

/// `pas profile`: render a region profile as folded stacks, an SVG
/// flamegraph, or JSON. Remote mode (`--serve-url`) fetches a running
/// server's `/profile`; local mode executes a scenario in-process with
/// the detail regions (per-event sim hot-loop scopes) switched on.
fn cmd_profile(args: &[String]) -> ExitCode {
    let pa = match parse_profile_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let body: Vec<u8> = match (&pa.serve_url, &pa.scenario) {
        (Some(_), Some(_)) => {
            return fail("give either a scenario or --serve-url, not both");
        }
        (Some(addr), None) => {
            let client = Client::new(addr.clone());
            match client.profile(pa.format, pa.seconds) {
                Ok(b) => b,
                Err(e) => {
                    return fail(format!(
                        "{addr}: /profile: {e} (is the server running with --metrics?)"
                    ))
                }
            }
        }
        (None, Some(src)) => {
            if pa.seconds.is_some() {
                return fail("--seconds only applies to --serve-url mode");
            }
            let m = match load(src) {
                Ok(m) => m,
                Err(e) => return fail(e),
            };
            // Local mode owns the process: add the detail regions the
            // always-on coarse set leaves out, start from a zeroed table.
            pas_obs::profile::set_detail(true);
            pas_obs::profile::reset();
            let sampler = pa.hz.map(pas_obs::profile::start_sampler);
            let result = execute(
                &m,
                ExecOptions {
                    threads: pa.threads,
                },
            );
            // Join the sampler before rendering so its last tick lands.
            drop(sampler);
            pas_obs::profile::set_detail(false);
            if let Err(e) = result {
                return fail(e);
            }
            match pa.format {
                ProfileFormat::Folded => pas_obs::profile::render_folded(),
                ProfileFormat::Svg => pas_obs::profile::render_svg(),
                ProfileFormat::Json => pas_obs::profile::render_json(),
            }
            .into_bytes()
        }
        (None, None) => {
            return fail("profile needs a scenario name/manifest path or --serve-url HOST:PORT");
        }
    };
    match &pa.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                return fail(format!("writing {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{}", String::from_utf8_lossy(&body)),
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// submit
// ---------------------------------------------------------------------------

struct SubmitArgs {
    scenario: String,
    addr: String,
    out: Option<PathBuf>,
    raw: Option<PathBuf>,
    poll_ms: u64,
    retries: u32,
    verbose: bool,
    quiet: bool,
}

fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, String> {
    let mut scenario = None;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut out = None;
    let mut raw = None;
    let mut poll_ms = 200u64;
    let mut retries = 8u32;
    let mut verbose = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            "--raw" => raw = Some(PathBuf::from(it.next().ok_or("--raw needs a file path")?)),
            "--poll-ms" => {
                let v = it.next().ok_or("--poll-ms needs a number")?;
                poll_ms = v
                    .parse()
                    .map_err(|_| format!("--poll-ms: `{v}` is not a number"))?;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a number")?;
                retries = v
                    .parse()
                    .map_err(|_| format!("--retries: `{v}` is not a number"))?;
            }
            "-v" | "--verbose" => verbose = true,
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if scenario.replace(other.to_string()).is_some() {
                    return Err("more than one scenario argument".to_string());
                }
            }
        }
    }
    Ok(SubmitArgs {
        scenario: scenario.ok_or("missing scenario name or manifest path")?,
        addr,
        out,
        raw,
        poll_ms,
        retries,
        verbose,
        quiet,
    })
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let sub = match parse_submit_args(args) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let m = match load(&sub.scenario) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let client = Client::new(sub.addr.clone());
    // Transient failures — the server still booting (connection refused)
    // or shedding load (429) — back off exponentially with jitter instead
    // of failing the whole batch submission.
    // `--retries N` means N retries on top of the first attempt.
    let policy = RetryPolicy {
        attempts: sub.retries.saturating_add(1),
        ..RetryPolicy::default()
    };
    let quiet = sub.quiet;
    // `-v` keeps a per-cause tally of what the retries actually hit
    // (refused vs backpressure vs timeout ...), mirroring the
    // `pas.client.submit.retries.count{cause}` series the client
    // records in the metrics registry.
    let mut retry_tally: Vec<(&'static str, u32)> = Vec::new();
    let id = match client.submit_with_retry(&m.to_toml(), policy, |attempt, err| {
        let cause = pas_server::retry_cause(err);
        match retry_tally.iter_mut().find(|(c, _)| *c == cause) {
            Some((_, n)) => *n += 1,
            None => retry_tally.push((cause, 1)),
        }
        if !quiet {
            eprintln!("submit retry {attempt}/{}: {err}", policy.attempts - 1);
        }
    }) {
        Ok(id) => id,
        Err(e) => return fail(e),
    };
    if sub.verbose && !sub.quiet {
        if retry_tally.is_empty() {
            eprintln!("retries   none (first attempt accepted)");
        } else {
            let total: u32 = retry_tally.iter().map(|(_, n)| n).sum();
            let causes: Vec<String> = retry_tally
                .iter()
                .map(|(c, n)| format!("{c}={n}"))
                .collect();
            eprintln!("retries   {total} ({})", causes.join(", "));
        }
    }
    if !sub.quiet {
        eprintln!("submitted `{}` to {} as job {id}", m.name, sub.addr);
    }
    let poll = std::time::Duration::from_millis(sub.poll_ms.max(1));
    let status = if sub.verbose && !sub.quiet {
        // Live rate readout: difference consecutive status polls, the
        // same derivation the server's SSE `progress` frames use.
        let mut mark: Option<(std::time::Instant, u64)> = None;
        let mut printed = false;
        let result = client.wait_with(id, poll, |s| {
            let now = std::time::Instant::now();
            if let Some((at, done)) = mark {
                let dt = now.duration_since(at).as_secs_f64();
                if s.phase == "running" && dt > 0.0 && s.done > done {
                    eprint!(
                        "\rrunning   {}/{} points ({:.0} points/s)  ",
                        s.done,
                        s.total,
                        (s.done - done) as f64 / dt
                    );
                    printed = true;
                }
            }
            if mark.is_none_or(|(_, done)| done != s.done) {
                mark = Some((now, s.done));
            }
        });
        if printed {
            eprintln!();
        }
        result
    } else {
        client.wait(id, poll)
    };
    let status = match status {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if status.phase != "completed" {
        return fail(format!(
            "job {id} {}: {}",
            status.phase,
            status.error.unwrap_or_else(|| "unknown error".to_string())
        ));
    }
    if !sub.quiet {
        eprintln!(
            "job {id} completed: {} runs, {} from cache, {} simulated",
            status.total, status.cache_hits, status.cache_misses
        );
    }
    let t_download = std::time::Instant::now();
    let csv = match client.results(id, ResultFormat::Csv) {
        Ok(b) => b,
        Err(e) => return fail(e),
    };
    let download_us = t_download.elapsed().as_micros() as u64;
    if sub.verbose && !sub.quiet {
        // Latency breakdown from the job's trace: where did the
        // submit→complete wall time actually go? Server-side phases come
        // from the span tree; the download leg is measured client-side.
        match client.trace(id, TraceFormat::Chrome) {
            Ok(body) => {
                let chrome = String::from_utf8_lossy(&body);
                let total = chrome_durs(&chrome, "job").first().copied().unwrap_or(0);
                let queued = chrome_durs(&chrome, "job.queued")
                    .first()
                    .copied()
                    .unwrap_or(0);
                // Local-exec jobs have one `job.execute`; distributed
                // jobs spread execution over concurrent
                // `worker.shard.execute` spans, so take their wall-clock
                // envelope (first start → last end), not the sum.
                let execute = chrome_durs(&chrome, "job.execute")
                    .first()
                    .copied()
                    .unwrap_or_else(|| {
                        let shards = chrome_ts_durs(&chrome, "worker.shard.execute");
                        let lo = shards.iter().map(|(ts, _)| *ts).min().unwrap_or(0);
                        let hi = shards.iter().map(|(ts, d)| ts + d).max().unwrap_or(0);
                        hi.saturating_sub(lo)
                    });
                let trace_id = status.trace.as_deref().unwrap_or("?");
                eprintln!(
                    "latency   total {total}us = queued {queued}us + execute {execute}us \
                     + other {}us; download {download_us}us (trace {trace_id}, \
                     `pas trace {id} --format critical-path`)",
                    total.saturating_sub(queued).saturating_sub(execute),
                );
            }
            Err(_) => {
                eprintln!(
                    "latency   trace unavailable (server without --metrics?); \
                     download {download_us}us"
                );
            }
        }
    }
    match &sub.out {
        // The body is written verbatim: byte-identical to `pas run --out`.
        Some(path) => {
            if let Err(e) = std::fs::write(path, &csv) {
                return fail(format!("writing {}: {e}", path.display()));
            }
            if !sub.quiet {
                println!("wrote {}", path.display());
            }
        }
        None => print!("{}", String::from_utf8_lossy(&csv)),
    }
    if let Some(path) = &sub.raw {
        let jsonl = match client.results(id, ResultFormat::Jsonl) {
            Ok(b) => b,
            Err(e) => return fail(e),
        };
        if let Err(e) = std::fs::write(path, &jsonl) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !sub.quiet {
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

/// Record one bench payload into its history file: append with
/// commit/date metadata (upgrading legacy single-object files in
/// place), echo the payload, and report the history depth.
fn record_bench(out: &Path, payload: &str) -> ExitCode {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let date = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .map(|d| pas_bench::civil_date(d.as_secs()));
    match pas_bench::append(out, payload, commit, date) {
        Ok(history) => {
            print!("{payload}");
            eprintln!(
                "appended to {} ({} entries)",
                out.display(),
                history.entries.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("recording {}: {e}", out.display())),
    }
}

/// `pas bench --gate`: fail on a throughput cliff between the two
/// newest entries of each bench history.
fn cmd_bench_gate(max_drop_pct: f64, files: &[PathBuf]) -> ExitCode {
    let defaults = [
        "BENCH_batch.json",
        "BENCH_dist.json",
        "BENCH_predictors.json",
        "BENCH_queue.json",
        "BENCH_server.json",
    ];
    let files: Vec<PathBuf> = if files.is_empty() {
        defaults.iter().map(PathBuf::from).collect()
    } else {
        files.to_vec()
    };
    let mut failed = false;
    for path in &files {
        let history = match pas_bench::BenchHistory::load(path) {
            Ok(Some(h)) => h,
            Ok(None) => {
                println!("gate {:<28} absent, skipped", path.display());
                continue;
            }
            Err(e) => return fail(format!("{}: {e}", path.display())),
        };
        let outcome = pas_bench::gate(&history, max_drop_pct);
        let verdict = if !outcome.ok {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        match (outcome.previous, outcome.latest, &outcome.key) {
            (Some(prev), Some(latest), Some(key)) => println!(
                "gate {:<28} {verdict}: {latest:.1} runs/s vs {prev:.1} at {key} \
                 ({:+.1}% drop, tolerance {max_drop_pct:.0}%)",
                path.display(),
                outcome.drop_pct
            ),
            _ => println!(
                "gate {:<28} {verdict}: no two entries with a shared configuration",
                path.display()
            ),
        }
    }
    if failed {
        fail("bench regression gate failed")
    } else {
        ExitCode::SUCCESS
    }
}

/// Smoke benchmark: expansion throughput and a small batch execute —
/// timed with the observability registry on and off, so the history
/// tracks instrumentation overhead — as JSON other PRs can diff for a
/// perf trajectory (BENCH_batch.json).
/// With `--dist N`, instead measure distributed scaling: cold-run the
/// full paper-default grid on in-process fleets of 1, 2, 4, …, N
/// single-threaded workers against a real `--no-local-exec` server, and
/// record throughput and efficiency vs the single-process sequential
/// baseline (BENCH_dist.json). Every result appends to the unified
/// versioned history (`pas-bench::history`); `--gate` checks the
/// newest entries for throughput cliffs instead of running anything.
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut dist: Option<usize> = None;
    let mut predictors = false;
    let mut queue = false;
    let mut profile = false;
    let mut gate = false;
    let mut server = false;
    let mut addr: Option<String> = None;
    let mut max_clients = 32usize;
    let mut step_ms = 1500u64;
    let mut max_drop_pct = pas_bench::DEFAULT_MAX_DROP_PCT;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return fail("--out needs a file path"),
            },
            "--dist" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => dist = Some(n),
                _ => return fail("--dist needs a worker count >= 1"),
            },
            "--predictors" => predictors = true,
            "--queue" => queue = true,
            "--profile" => profile = true,
            "--gate" => gate = true,
            "--server" => server = true,
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--max-clients" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => max_clients = n,
                _ => return fail("--max-clients needs a count >= 1"),
            },
            "--step-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n >= 100 => step_ms = n,
                _ => return fail("--step-ms needs a duration >= 100"),
            },
            "--max-drop" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(p)) if p >= 0.0 => max_drop_pct = p,
                _ => return fail("--max-drop needs a percentage >= 0"),
            },
            other if other.starts_with('-') => {
                return fail(format!("unknown bench option `{other}`"))
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if gate {
        return cmd_bench_gate(max_drop_pct, &files);
    }
    if !files.is_empty() {
        return fail("positional files only apply to --gate");
    }
    if server {
        return cmd_bench_server(
            addr,
            max_clients,
            step_ms,
            out.unwrap_or_else(|| PathBuf::from("BENCH_server.json")),
        );
    }
    if addr.is_some() {
        return fail("--addr only applies to --server");
    }
    if predictors {
        return cmd_bench_predictors(out.unwrap_or_else(|| PathBuf::from("BENCH_predictors.json")));
    }
    if queue {
        return cmd_bench_queue(out.unwrap_or_else(|| PathBuf::from("BENCH_queue.json")));
    }
    if let Some(max_workers) = dist {
        return cmd_bench_dist(
            max_workers,
            out.unwrap_or_else(|| PathBuf::from("BENCH_dist.json")),
        );
    }
    let out = out.unwrap_or_else(|| PathBuf::from("BENCH_batch.json"));
    let manifest = registry::builtin("paper-default").expect("builtin parses");
    let points = match expand(&manifest) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };

    // Expansion: many iterations, it is microseconds-scale.
    let expand_iters = 200u32;
    let t0 = std::time::Instant::now();
    for _ in 0..expand_iters {
        let p = expand(&manifest).expect("expansion is deterministic");
        assert_eq!(p.len(), points.len());
    }
    let expand_ns = t0.elapsed().as_nanos() as u64 / u64::from(expand_iters);

    // Execution: a fixed sub-grid, sequential for machine-independence.
    // Timed three ways — the shipping configuration (metrics + span
    // tracing collecting, under an ambient trace context so `exec.point`
    // spans actually record; `execute_us_sequential` keeps the gate's
    // trend line continuous), tracing disabled (`execute_us_trace_off`,
    // isolating the span recorder's overhead), and the whole registry
    // disabled (`execute_us_obs_off`). The derived `trace_overhead_pct`
    // and `obs_overhead_pct` ride the same gated history.
    let mut small = manifest.clone();
    small.sweep[0].values = vec![4.0, 12.0].into();
    small.run.replicates = 4;
    let n_runs = match expand(&small) {
        Ok(p) => p.len(),
        Err(e) => return fail(e),
    };
    let timed = |obs: bool,
                 tracing: bool,
                 profiling: bool|
     -> Result<(u64, pas_scenario::BatchResult), String> {
        pas_obs::set_enabled(obs);
        pas_obs::trace::set_tracing(tracing);
        pas_obs::profile::set_profiling(profiling);
        let mut best: Option<(u64, pas_scenario::BatchResult)> = None;
        for _ in 0..3 {
            // Fresh trace per iteration; threads=1 executes inline on
            // this thread, so the ambient context reaches every point.
            let trace = pas_obs::trace::mint_id();
            let _ctx = pas_obs::trace::enter(trace, pas_obs::trace::mint_id());
            let t = std::time::Instant::now();
            let batch = execute(&small, ExecOptions { threads: 1 }).map_err(|e| e.to_string())?;
            let us = t.elapsed().as_micros() as u64;
            if best.as_ref().is_none_or(|(b, _)| us < *b) {
                best = Some((us, batch));
            }
        }
        Ok(best.expect("three timed iterations"))
    };
    // Region profiling rides the shipping configuration (the coarse
    // scopes are always on), so `execute_us_sequential` stays continuous
    // with pre-profiler history. Zero the table first so the breakdown
    // below attributes only this bench's own runs.
    pas_obs::profile::reset();
    // The history sampler also rides the shipping configuration, at an
    // aggressive interval so the pair is a worst-case bound: it stays
    // running through every on-variant and is dropped only for the
    // `execute_us_history_off` re-measurement below.
    let history_sampler = pas_obs::history::start_sampler(pas_obs::history::HistoryConfig {
        interval: Duration::from_millis(100),
        retention: 64,
    });
    let (exec_us, batch) = match timed(true, true, true) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    // Snapshot now: the later off-variant runs would dilute the calls.
    let regions = profile.then(profile_region_json);
    let exec_us_trace_off = match timed(true, false, true) {
        Ok((us, _)) => us,
        Err(e) => return fail(e),
    };
    let exec_us_profile_off = if profile {
        match timed(true, true, false) {
            Ok((us, _)) => Some(us),
            Err(e) => return fail(e),
        }
    } else {
        None
    };
    let exec_us_off = match timed(false, false, false) {
        Ok((us, _)) => us,
        Err(e) => return fail(e),
    };
    // Sampler-off pair: stop (and join) the history thread, re-run the
    // shipping configuration. The delta is what background sampling
    // costs the hot path — budgeted under 2% like the other pairs.
    drop(history_sampler);
    let exec_us_history_off = match timed(true, true, true) {
        Ok((us, _)) => us,
        Err(e) => return fail(e),
    };
    pas_obs::set_enabled(true);
    pas_obs::trace::set_tracing(true);
    pas_obs::profile::set_profiling(true);
    let overhead = |on: u64, off: u64| {
        if off > 0 {
            (on as f64 / off as f64 - 1.0) * 100.0
        } else {
            0.0
        }
    };
    let overhead_pct = overhead(exec_us, exec_us_off);
    let trace_overhead_pct = overhead(exec_us, exec_us_trace_off);
    let history_overhead_pct = overhead(exec_us, exec_us_history_off);
    // `--profile` contributes three extra fields; without it the payload
    // is byte-identical to the pre-profiler shape.
    let profile_fields = match (exec_us_profile_off, regions) {
        (Some(off_us), Some(regions)) => format!(
            "  \"execute_us_profile_off\": {off_us},\n  \
             \"profile_overhead_pct\": {:.2},\n  \
             \"profile_regions\": {regions},\n",
            overhead(exec_us, off_us)
        ),
        _ => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"batch\",\n  \"scenario\": \"paper-default\",\n  \
         \"expand_runs\": {},\n  \"expand_ns_per_iter\": {expand_ns},\n  \
         \"execute_runs\": {n_runs},\n  \"execute_us_sequential\": {exec_us},\n  \
         \"execute_us_trace_off\": {exec_us_trace_off},\n  \
         \"trace_overhead_pct\": {trace_overhead_pct:.2},\n  \
         \"execute_us_obs_off\": {exec_us_off},\n  \"obs_overhead_pct\": {overhead_pct:.2},\n  \
         \"execute_us_history_off\": {exec_us_history_off},\n  \
         \"history_overhead_pct\": {history_overhead_pct:.2},\n\
         {profile_fields}  \
         \"execute_us_per_run\": {},\n  \"events_total\": {}\n}}\n",
        points.len(),
        exec_us / n_runs as u64,
        batch
            .records
            .iter()
            .map(|r| r.events_processed)
            .sum::<u64>(),
    );
    record_bench(&out, &json)
}

/// The global profile table folded down to a per-region JSON array:
/// entries sharing a leaf region merge (self-time and calls summed over
/// every stack path ending there), sorted by self-time descending with
/// name as the deterministic tie-break.
fn profile_region_json() -> String {
    let mut agg: Vec<(String, u64, u64, u64)> = Vec::new();
    for e in pas_obs::profile::snapshot() {
        let Some(leaf) = e.stack.last() else { continue };
        match agg.iter_mut().find(|(name, ..)| name == leaf) {
            Some((_, calls, self_ns, total_ns)) => {
                *calls += e.calls;
                *self_ns += e.self_ns();
                *total_ns += e.total_ns;
            }
            None => agg.push((leaf.clone(), e.calls, e.self_ns(), e.total_ns)),
        }
    }
    agg.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    let items: Vec<String> = agg
        .iter()
        .map(|(name, calls, self_ns, total_ns)| {
            format!(
                "    {{\"region\": \"{name}\", \"calls\": {calls}, \
                 \"self_us\": {}, \"total_us\": {}}}",
                self_ns / 1_000,
                total_ns / 1_000
            )
        })
        .collect();
    if items.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", items.join(",\n"))
    }
}

/// Per-predictor hot-path bench: sequential point throughput of every
/// arrival-predictor variant on a fixed paper-workload sub-grid, so the
/// perf trajectory tracks the estimation path itself — the code inside
/// the wake-decision loop — not just batch/dist plumbing
/// (BENCH_predictors.json).
fn cmd_bench_predictors(out: PathBuf) -> ExitCode {
    let base = registry::builtin("paper-default").expect("builtin parses");
    let mut entries = Vec::new();
    let mut runs_per_predictor = 0usize;
    for name in pas_core::PREDICTOR_NAMES {
        // One PAS policy mounting the variant, over the Fig. 4 operating
        // slice: 2 axis points x 8 seeds, sequential for comparability.
        let mut m = base.clone();
        m.name = "bench-predictors".to_string();
        m.policies.retain(|p| p.kind == "pas");
        m.policies[0].predictor = pas_core::PredictorSpec::from_name(name);
        m.sweep[0].values = vec![4.0, 12.0].into();
        m.run.replicates = 8;
        let n_runs = match expand(&m) {
            Ok(p) => p.len(),
            Err(e) => return fail(e),
        };
        runs_per_predictor = n_runs;
        let t0 = std::time::Instant::now();
        let batch = match execute(&m, ExecOptions { threads: 1 }) {
            Ok(b) => b,
            Err(e) => return fail(e),
        };
        let us = t0.elapsed().as_micros() as u64;
        let events: u64 = batch.records.iter().map(|r| r.events_processed).sum();
        entries.push(format!(
            "    {{\"predictor\": \"{name}\", \"execute_us\": {us}, \
             \"us_per_run\": {}, \"runs_per_s\": {:.1}, \"events_total\": {events}}}",
            us / n_runs as u64,
            n_runs as f64 / (us as f64 / 1e6),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"predictors\",\n  \"scenario\": \"paper-default\",\n  \
         \"runs_per_predictor\": {runs_per_predictor},\n  \"predictors\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    record_bench(&out, &json)
}

/// Event-queue microbench: steady-state push+pop throughput of the
/// calendar queue against the heap reference, at several pending-set
/// sizes. The workload mirrors the simulator's access pattern: hold N
/// events pending and repeatedly pop the earliest, then push a
/// replacement 0–20 s ahead of the popped time (an LCG supplies the
/// jitter so both implementations see the identical sequence).
fn cmd_bench_queue(out: PathBuf) -> ExitCode {
    use pas_sim::{EventQueue, HeapEventQueue, SimTime};
    const OPS: u64 = 200_000;
    fn next_time(x: &mut u64, now: f64) -> f64 {
        *x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        now + ((*x >> 40) as f64) * (20.0 / 16777216.0)
    }
    fn bench<Q>(
        n: usize,
        mut push: impl FnMut(&mut Q, SimTime),
        mut pop: impl FnMut(&mut Q) -> SimTime,
        q: &mut Q,
    ) -> u64 {
        let mut x: u64 = 12345;
        for _ in 0..n {
            push(q, SimTime::from_secs(next_time(&mut x, 0.0)));
        }
        let t0 = std::time::Instant::now();
        for _ in 0..OPS {
            let now = pop(q).as_secs();
            push(q, SimTime::from_secs(next_time(&mut x, now)));
        }
        (t0.elapsed().as_nanos() as u64).max(1) / OPS
    }
    let mut entries = Vec::new();
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let label = match n {
            1_000 => "n1k",
            100_000 => "n100k",
            _ => "n1m",
        };
        let mut cq: EventQueue<u32> = EventQueue::new();
        let cal = bench(
            n,
            |q: &mut EventQueue<u32>, t| q.push(t, 0),
            |q| q.pop().expect("queue holds n pending").0,
            &mut cq,
        );
        let mut hq: HeapEventQueue<u32> = HeapEventQueue::new();
        let heap = bench(
            n,
            |q: &mut HeapEventQueue<u32>, t| q.push(t, 0),
            |q| q.pop().expect("queue holds n pending").0,
            &mut hq,
        );
        for (impl_name, ns) in [("calendar", cal), ("heap", heap)] {
            entries.push(format!(
                "    {{\"config\": \"{impl_name}-{label}\", \"pending\": {n}, \
                 \"ns_per_op\": {ns}, \"ops_per_s\": {:.1}}}",
                1e9 / ns.max(1) as f64,
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"queue\",\n  \"ops\": {OPS},\n  \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    record_bench(&out, &json)
}

/// Distributed scaling bench: one in-process server + fleet per
/// configuration, each starting from a cold cache so every point
/// simulates remotely.
fn cmd_bench_dist(max_workers: usize, out: PathBuf) -> ExitCode {
    let manifest = registry::builtin("paper-default").expect("builtin parses");
    let toml = manifest.to_toml();
    let n_runs = match expand(&manifest) {
        Ok(p) => p.len(),
        Err(e) => return fail(e),
    };

    // Single-process sequential baseline (the PR 2 execution path).
    let t0 = std::time::Instant::now();
    if let Err(e) = execute(&manifest, ExecOptions { threads: 1 }) {
        return fail(e);
    }
    let base_us = t0.elapsed().as_micros() as u64;

    let mut counts: Vec<usize> = Vec::new();
    let mut w = 1;
    while w < max_workers {
        counts.push(w);
        w *= 2;
    }
    counts.push(max_workers);

    let mut fleets = Vec::new();
    for &workers in &counts {
        let dir =
            std::env::temp_dir().join(format!("pas_bench_dist_{}_{workers}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = match ResultCache::open(&dir) {
            Ok(c) => c,
            Err(e) => return fail(format!("opening {}: {e}", dir.display())),
        };
        let opts = ServerOptions {
            local_exec: false,
            ..ServerOptions::default()
        };
        let mut server = match Server::bind("127.0.0.1:0", cache.clone(), opts) {
            Ok(s) => s,
            Err(e) => return fail(format!("binding bench server: {e}")),
        };
        let addr = match server.local_addr() {
            Ok(a) => a.to_string(),
            Err(e) => return fail(format!("bench server addr: {e}")),
        };
        let scheduler = Scheduler::new(
            server.queue(),
            cache,
            SchedulerOptions {
                heartbeat: Duration::from_millis(200),
                ..SchedulerOptions::default()
            },
        );
        scheduler.spawn_ticker();
        server.set_router(scheduler.into_router());
        std::thread::spawn(move || server.run());

        let fleet: Vec<_> = (0..workers)
            .map(|i| {
                let addr = addr.clone();
                let opts = WorkerOptions {
                    name: format!("bench-{i}"),
                    threads: 1,
                    poll: Duration::from_millis(10),
                    verbose: false,
                    ..WorkerOptions::default()
                };
                std::thread::spawn(move || pas_dist::worker::run(&addr, opts))
            })
            .collect();

        let client = Client::new(addr);
        let t1 = std::time::Instant::now();
        let id = match client.submit_with_retry(&toml, RetryPolicy::default(), |_, _| {}) {
            Ok(id) => id,
            Err(e) => return fail(format!("bench submit: {e}")),
        };
        let status = match client.wait(id, Duration::from_millis(20)) {
            Ok(s) => s,
            Err(e) => return fail(format!("bench wait: {e}")),
        };
        let wall_us = t1.elapsed().as_micros() as u64;
        if status.phase != "completed" || status.cache_misses != n_runs as u64 {
            return fail(format!(
                "bench fleet of {workers}: phase {}, {} simulated (want {n_runs})",
                status.phase, status.cache_misses
            ));
        }
        if let Err(e) = client.drain() {
            return fail(format!("bench drain: {e}"));
        }
        for handle in fleet {
            match handle.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return fail(format!("bench worker: {e}")),
                Err(_) => return fail("bench worker panicked"),
            }
        }
        let speedup = base_us as f64 / wall_us as f64;
        fleets.push(format!(
            "    {{\"workers\": {workers}, \"wall_us\": {wall_us}, \
             \"runs_per_s\": {:.1}, \"speedup\": {speedup:.3}, \
             \"efficiency\": {:.3}}}",
            n_runs as f64 / (wall_us as f64 / 1e6),
            speedup / workers as f64,
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let json = format!(
        "{{\n  \"bench\": \"dist\",\n  \"scenario\": \"paper-default\",\n  \
         \"runs\": {n_runs},\n  \"baseline_sequential_us\": {base_us},\n  \
         \"fleets\": [\n{}\n  ]\n}}\n",
        fleets.join(",\n"),
    );
    record_bench(&out, &json)
}

/// Server saturation harness: ramp concurrent closed-loop submit
/// clients (1, 2, 4, …, `max_clients`) against a live server, each
/// submitting tiny warm-cache jobs and waiting for completion as fast
/// as the control loop allows. Throughput climbs with concurrency
/// until the server saturates; the knee is the smallest ramp step
/// reaching ≥95% of the peak, and its p99 is the latency cost of
/// operating there. Appends a `server-saturation` entry (per-step
/// table, knee, max sustained jobs/s, error/429 counts) to
/// BENCH_server.json under the versioned history schema.
///
/// Without `--addr` an in-process `--metrics` server (local exec,
/// temp cache) is booted, so the bench also exercises the history
/// sampler under load. The jobs are warm after one seed submission:
/// the harness measures the submit→queue→cache→complete control loop —
/// the saturation behaviour of the *server*, not the simulator.
fn cmd_bench_server(
    addr: Option<String>,
    max_clients: usize,
    step_ms: u64,
    out: PathBuf,
) -> ExitCode {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // The smallest useful job: one axis point, one replicate.
    let mut m = registry::builtin("paper-default").expect("builtin parses");
    m.sweep[0].values = vec![4.0].into();
    m.run.replicates = 1;
    let toml = m.to_toml();

    let mut cleanup_dir: Option<PathBuf> = None;
    let addr = match addr {
        Some(a) => a,
        None => {
            let dir = std::env::temp_dir().join(format!("pas_bench_server_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let cache = match ResultCache::open(&dir) {
                Ok(c) => c,
                Err(e) => return fail(format!("opening {}: {e}", dir.display())),
            };
            let opts = ServerOptions {
                metrics: true,
                history_interval: Duration::from_millis(250),
                history_retention: 240,
                ..ServerOptions::default()
            };
            let server = match Server::bind("127.0.0.1:0", cache, opts) {
                Ok(s) => s,
                Err(e) => return fail(format!("binding bench server: {e}")),
            };
            let a = match server.local_addr() {
                Ok(a) => a.to_string(),
                Err(e) => return fail(format!("bench server addr: {e}")),
            };
            std::thread::spawn(move || server.run());
            cleanup_dir = Some(dir);
            a
        }
    };

    // Seed submission: after this every harness job is a cache hit.
    let seed = Client::new(addr.clone());
    let id = match seed.submit_with_retry(&toml, RetryPolicy::default(), |_, _| {}) {
        Ok(id) => id,
        Err(e) => return fail(format!("bench seed submit to {addr}: {e}")),
    };
    match seed.wait(id, Duration::from_millis(5)) {
        Ok(s) if s.phase == "completed" => {}
        Ok(s) => {
            return fail(format!(
                "bench seed job {}: {}",
                s.phase,
                s.error.unwrap_or_default()
            ))
        }
        Err(e) => return fail(format!("bench seed wait: {e}")),
    }

    let mut ramp: Vec<usize> = Vec::new();
    let mut c = 1;
    while c < max_clients {
        ramp.push(c);
        c *= 2;
    }
    ramp.push(max_clients);

    struct Step {
        clients: usize,
        jobs: u64,
        jobs_per_s: f64,
        p50_us: u64,
        p95_us: u64,
        p99_us: u64,
        errors: u64,
        http_429: u64,
    }
    let mut steps: Vec<Step> = Vec::new();
    for &clients in &ramp {
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let toml = toml.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let mut latencies: Vec<u64> = Vec::new();
                    let mut errors = 0u64;
                    let mut http_429 = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = std::time::Instant::now();
                        match client.submit(&toml) {
                            Ok(id) => match client.wait(id, Duration::from_millis(2)) {
                                Ok(s) if s.phase == "completed" => {
                                    latencies.push(t0.elapsed().as_micros() as u64)
                                }
                                _ => errors += 1,
                            },
                            Err(ClientError::Api(429, _)) => {
                                // Backpressure is an expected saturation
                                // signal, not a failure: count and yield.
                                http_429 += 1;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => {
                                errors += 1;
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                    (latencies, errors, http_429)
                })
            })
            .collect();
        let t0 = std::time::Instant::now();
        std::thread::sleep(Duration::from_millis(step_ms));
        stop.store(true, Ordering::Relaxed);
        let mut latencies: Vec<u64> = Vec::new();
        let mut errors = 0u64;
        let mut http_429 = 0u64;
        for h in handles {
            match h.join() {
                Ok((lat, e, r)) => {
                    latencies.extend(lat);
                    errors += e;
                    http_429 += r;
                }
                Err(_) => return fail("bench client thread panicked"),
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let q = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len()) - 1;
            latencies[idx]
        };
        let jobs = latencies.len() as u64;
        let step = Step {
            clients,
            jobs,
            jobs_per_s: jobs as f64 / wall_s,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
            errors,
            http_429,
        };
        eprintln!(
            "bench --server: {:>4} client(s): {:>8.1} jobs/s, p99 {:>8}us, \
             {} error(s), {} 429(s)",
            clients, step.jobs_per_s, step.p99_us, errors, http_429
        );
        steps.push(step);
    }
    if let Some(dir) = cleanup_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The knee: smallest concurrency sustaining ≥95% of the peak —
    // beyond it throughput plateaus and added clients only buy latency.
    let max_jps = steps.iter().map(|s| s.jobs_per_s).fold(0.0, f64::max);
    let knee = steps
        .iter()
        .find(|s| s.jobs_per_s >= 0.95 * max_jps)
        .unwrap_or_else(|| steps.last().expect("ramp is non-empty"));
    let (knee_clients, p99_at_knee) = (knee.clients, knee.p99_us);
    let errors_total: u64 = steps.iter().map(|s| s.errors).sum();
    let http_429_total: u64 = steps.iter().map(|s| s.http_429).sum();
    let rows: Vec<String> = steps
        .iter()
        .map(|s| {
            format!(
                "    {{\"clients\": {}, \"jobs\": {}, \"jobs_per_s\": {:.1}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
                 \"errors\": {}, \"http_429\": {}}}",
                s.clients, s.jobs, s.jobs_per_s, s.p50_us, s.p95_us, s.p99_us, s.errors, s.http_429
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"server\",\n  \"scenario\": \"server-saturation\",\n  \
         \"step_ms\": {step_ms},\n  \"steps\": [\n{}\n  ],\n  \
         \"knee_clients\": {knee_clients},\n  \"max_jobs_per_s\": {max_jps:.1},\n  \
         \"p99_us_at_knee\": {p99_at_knee},\n  \"errors_total\": {errors_total},\n  \
         \"http_429_total\": {http_429_total}\n}}\n",
        rows.join(",\n"),
    );
    record_bench(&out, &json)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => match args.get(1) {
            Some(name) => cmd_show(name),
            None => fail("show needs a scenario name"),
        },
        Some("validate") => match args.get(1) {
            Some(path) => cmd_validate(path),
            None => fail("validate needs a manifest path"),
        },
        Some("expand") => match args.get(1) {
            Some(arg) => cmd_expand(arg),
            None => fail("expand needs a scenario name or manifest path"),
        },
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_passes_counters_verbatim_and_folds_histograms() {
        let text = "\
# TYPE pas_server_http_requests_count counter
pas_server_http_requests_count{route=\"/jobs\"} 7
# TYPE pas_t_microseconds histogram
pas_t_microseconds_bucket{route=\"/jobs\",le=\"10\"} 1
pas_t_microseconds_bucket{route=\"/jobs\",le=\"100\"} 2
pas_t_microseconds_bucket{route=\"/jobs\",le=\"+Inf\"} 3
pas_t_microseconds_sum{route=\"/jobs\"} 160
pas_t_microseconds_count{route=\"/jobs\"} 3
# TYPE pas_q_gauge gauge
pas_q_gauge 2
";
        let out = summarize_metrics(text);
        // Counter and gauge lines survive byte-for-byte.
        assert!(out.contains("pas_server_http_requests_count{route=\"/jobs\"} 7\n"));
        assert!(out.contains("pas_q_gauge 2\n"));
        // The histogram block collapses to one summary line: no raw
        // buckets, quantiles read off the cumulative bounds.
        assert!(!out.contains("_bucket"));
        assert!(out.contains(
            "pas_t_microseconds{route=\"/jobs\"} count=3 sum=160 p50<=100 p95>100 p99>100\n"
        ));
    }

    #[test]
    fn summarize_handles_zero_count_and_unlabelled_histograms() {
        let text = "\
# TYPE pas_e histogram
pas_e_bucket{le=\"10\"} 0
pas_e_bucket{le=\"+Inf\"} 0
pas_e_sum 0
pas_e_count 0
";
        assert_eq!(
            summarize_metrics(text),
            "# TYPE pas_e histogram\npas_e count=0\n"
        );
    }

    #[test]
    fn quantile_picks_smallest_covering_bound() {
        let buckets = vec![
            ("10".to_string(), 5u64),
            ("100".to_string(), 9),
            ("+Inf".to_string(), 10),
        ];
        assert_eq!(hist_quantile(&buckets, 10, 0.50), "<=10");
        assert_eq!(hist_quantile(&buckets, 10, 0.90), "<=100");
        assert_eq!(hist_quantile(&buckets, 10, 0.99), ">100");
    }
}
